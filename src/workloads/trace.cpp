#include "workloads/trace.hpp"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>

#include "util/crc32.hpp"
#include "util/fs.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"

namespace tlp::workloads {

namespace {

using util::Error;
using util::ErrorCode;
using util::Expected;

/** Registry cache misses / wall time (see traceLoadStats()). */
std::atomic<std::uint64_t> g_trace_loads{0};
std::atomic<std::uint64_t> g_trace_load_micros{0};

/** Same quantization as runner::quantizeScale (run_cache.hpp); kept
 *  local because the workload layer sits below the runner. */
std::int64_t
quantizedScale(double scale)
{
    return std::llround(scale * 1e9);
}

std::string
at(std::string_view origin, std::size_t line_no)
{
    return util::strcatMsg(origin, ":", line_no);
}

/** Split @p line into whitespace-separated tokens (no escapes). */
std::vector<std::string_view>
tokenize(std::string_view line)
{
    std::vector<std::string_view> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t'))
            ++i;
        const std::size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t')
            ++i;
        if (i > start)
            tokens.push_back(line.substr(start, i - start));
    }
    return tokens;
}

/** Parse a decimal unsigned integer <= @p max, rejecting junk and
 *  overflow with a ParseError naming @p what. */
Expected<std::uint64_t>
parseDecimal(std::string_view text, std::string_view what,
             std::uint64_t max)
{
    if (text.empty())
        return Error(ErrorCode::ParseError,
                     util::strcatMsg("empty ", what));
    std::uint64_t v = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return Error(ErrorCode::ParseError,
                         util::strcatMsg("malformed ", what, " '", text,
                                         "' (decimal digits only)"));
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (max - digit) / 10)
            return Error(ErrorCode::ParseError,
                         util::strcatMsg(what, " '", text,
                                         "' exceeds the maximum of ",
                                         max));
        v = v * 10 + digit;
    }
    return v;
}

/** Parse a hex address (optional 0x prefix), rejecting junk and 64-bit
 *  overflow with a ParseError. */
Expected<std::uint64_t>
parseHexAddr(std::string_view text)
{
    std::string_view digits = text;
    if (digits.rfind("0x", 0) == 0 || digits.rfind("0X", 0) == 0)
        digits.remove_prefix(2);
    if (digits.empty())
        return Error(ErrorCode::ParseError,
                     util::strcatMsg("empty address '", text, "'"));
    std::uint64_t v = 0;
    for (char c : digits) {
        std::uint64_t nibble;
        if (c >= '0' && c <= '9')
            nibble = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            nibble = static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            nibble = static_cast<std::uint64_t>(c - 'A' + 10);
        else
            return Error(ErrorCode::ParseError,
                         util::strcatMsg("malformed address '", text,
                                         "' (hex digits only)"));
        if (v >> 60)
            return Error(ErrorCode::ParseError,
                         util::strcatMsg("address '", text,
                                         "' overflows 64 bits"));
        v = (v << 4) | nibble;
    }
    return v;
}

/** Parse a `key=value` token, checking the key. */
Expected<std::string_view>
fieldValue(std::string_view token, std::string_view key)
{
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || token.substr(0, eq) != key)
        return Error(ErrorCode::ParseError,
                     util::strcatMsg("expected ", key, "=<value>, got '",
                                     token, "'"));
    return token.substr(eq + 1);
}

/** Render @p value as 8 lowercase hex digits. */
std::string
hex32(std::uint32_t value)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x", value);
    return buf;
}

/** Verify the optional sealed `#tlppm-trace` first line; true when the
 *  file is sealed (and the CRC matched), false when unsealed. */
Expected<bool>
checkHeader(std::string_view text, std::string_view origin)
{
    if (text.rfind("#tlppm-trace", 0) != 0)
        return false; // unsealed file: no integrity check
    const std::size_t eol = text.find('\n');
    const std::string_view header =
        text.substr(0, eol == std::string_view::npos ? text.size() : eol);
    const auto tokens = tokenize(header);
    if (tokens.size() != 3 || tokens[1] != "v1")
        return Error(ErrorCode::ParseError,
                     util::strcatMsg("unsupported trace header '", header,
                                     "' (expected '#tlppm-trace v1 "
                                     "crc=0x<hex>')"))
            .withContext(at(origin, 1));
    const auto crc_text = fieldValue(tokens[2], "crc");
    if (!crc_text.ok())
        return Error(crc_text.error()).withContext(at(origin, 1));
    const auto declared = parseHexAddr(crc_text.value());
    if (!declared.ok() || declared.value() > 0xffffffffu)
        return Error(ErrorCode::ParseError,
                     util::strcatMsg("malformed trace header CRC '",
                                     header, "'"))
            .withContext(at(origin, 1));
    const std::string_view body =
        eol == std::string_view::npos ? std::string_view{}
                                      : text.substr(eol + 1);
    const std::uint32_t actual = util::crc32(body);
    if (actual != static_cast<std::uint32_t>(declared.value()))
        return Error(ErrorCode::CorruptData,
                     util::strcatMsg(
                         "trace CRC mismatch: header declares 0x",
                         hex32(static_cast<std::uint32_t>(declared.value())),
                         " but the content hashes to 0x", hex32(actual),
                         " -- the file is truncated or corrupted"))
            .withContext(std::string(origin));
    return true;
}

} // namespace

Expected<TraceFile>
parseTrace(std::string_view text, std::string_view origin)
{
    const auto sealed = checkHeader(text, origin);
    if (!sealed.ok())
        return sealed.error();

    TraceFile file;
    file.crc = util::crc32(text);

    bool saw_trace_line = false;
    bool in_program = false;
    int program_n = 0;
    std::size_t program_line = 0;
    sim::Program program;

    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t eol = text.find('\n', pos);
        std::string_view line =
            text.substr(pos, (eol == std::string_view::npos
                                  ? text.size()
                                  : eol) -
                                 pos);
        pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.remove_suffix(1);
        if (line.empty() || line[0] == '#')
            continue;

        const auto tokens = tokenize(line);
        if (tokens.empty())
            continue;

        if (tokens[0] == "@trace") {
            if (saw_trace_line || in_program)
                return Error(ErrorCode::ParseError,
                             "duplicate or misplaced @trace line")
                    .withContext(at(origin, line_no));
            if (tokens.size() != 3)
                return Error(ErrorCode::ParseError,
                             "@trace needs exactly workload=<name> "
                             "scale=<scale>")
                    .withContext(at(origin, line_no));
            const auto name = fieldValue(tokens[1], "workload");
            if (!name.ok())
                return Error(name.error())
                    .withContext(at(origin, line_no));
            if (name.value().empty())
                return Error(ErrorCode::ParseError,
                             "@trace workload name is empty")
                    .withContext(at(origin, line_no));
            const auto scale_text = fieldValue(tokens[2], "scale");
            if (!scale_text.ok())
                return Error(scale_text.error())
                    .withContext(at(origin, line_no));
            const auto scale = util::parseNumber(
                scale_text.value(), "@trace scale", 1e-9, 1.0);
            if (!scale.ok())
                return Error(scale.error())
                    .withContext(at(origin, line_no));
            file.workload = std::string(name.value());
            file.scale = scale.value();
            saw_trace_line = true;
            continue;
        }

        if (tokens[0] == "@program") {
            if (!saw_trace_line)
                return Error(ErrorCode::ParseError,
                             "@program before the @trace line")
                    .withContext(at(origin, line_no));
            if (in_program)
                return Error(ErrorCode::ParseError,
                             "@program inside an open @program "
                             "(missing @end)")
                    .withContext(at(origin, line_no));
            if (tokens.size() != 4)
                return Error(ErrorCode::ParseError,
                             "@program needs exactly n=<cores> "
                             "barriers=<count> locks=<count>")
                    .withContext(at(origin, line_no));
            const auto n_text = fieldValue(tokens[1], "n");
            const auto barriers_text = fieldValue(tokens[2], "barriers");
            const auto locks_text = fieldValue(tokens[3], "locks");
            for (const auto* field : {&n_text, &barriers_text,
                                      &locks_text}) {
                if (!field->ok())
                    return Error(field->error())
                        .withContext(at(origin, line_no));
            }
            const auto n = parseDecimal(n_text.value(), "@program n",
                                        1024);
            if (!n.ok())
                return Error(n.error()).withContext(at(origin, line_no));
            if (n.value() == 0)
                return Error(ErrorCode::ParseError,
                             "@program n must be >= 1")
                    .withContext(at(origin, line_no));
            const auto barriers = parseDecimal(
                barriers_text.value(), "@program barriers",
                std::numeric_limits<std::uint64_t>::max());
            if (!barriers.ok())
                return Error(barriers.error())
                    .withContext(at(origin, line_no));
            const auto locks = parseDecimal(
                locks_text.value(), "@program locks",
                std::numeric_limits<std::uint64_t>::max());
            if (!locks.ok())
                return Error(locks.error())
                    .withContext(at(origin, line_no));
            program_n = static_cast<int>(n.value());
            if (file.programs.count(program_n))
                return Error(ErrorCode::ParseError,
                             util::strcatMsg("duplicate @program n=",
                                             program_n))
                    .withContext(at(origin, line_no));
            program = sim::Program{};
            program.threads.resize(static_cast<std::size_t>(program_n));
            program.n_barriers = barriers.value();
            program.n_locks = locks.value();
            program_line = line_no;
            in_program = true;
            continue;
        }

        if (tokens[0] == "@end") {
            if (!in_program)
                return Error(ErrorCode::ParseError,
                             "@end without an open @program")
                    .withContext(at(origin, line_no));
            if (tokens.size() != 1)
                return Error(ErrorCode::ParseError,
                             "@end takes no operands")
                    .withContext(at(origin, line_no));
            for (sim::ThreadProgram& tp : program.threads)
                tp.finish();
            file.programs.emplace(program_n, std::move(program));
            in_program = false;
            continue;
        }

        // Everything else must be a core op line.
        if (tokens[0].size() < 2 || tokens[0][0] != 'C')
            return Error(ErrorCode::ParseError,
                         util::strcatMsg("malformed line '", line,
                                         "' (expected C<core> "
                                         "<mnemonic> ... or a @"
                                         "directive)"))
                .withContext(at(origin, line_no));
        if (!in_program)
            return Error(ErrorCode::ParseError,
                         util::strcatMsg("op line '", line,
                                         "' outside a @program section"))
                .withContext(at(origin, line_no));
        const auto core = parseDecimal(tokens[0].substr(1), "core id",
                                       1023);
        if (!core.ok())
            return Error(core.error()).withContext(at(origin, line_no));
        if (core.value() >= static_cast<std::uint64_t>(program_n))
            return Error(ErrorCode::ParseError,
                         util::strcatMsg("unknown core C", core.value(),
                                         " (this @program declares n=",
                                         program_n, ")"))
                .withContext(at(origin, line_no));
        sim::ThreadProgram& tp = program.threads[core.value()];

        if (tokens.size() < 2)
            return Error(ErrorCode::ParseError,
                         util::strcatMsg("op line '", line,
                                         "' lacks a mnemonic"))
                .withContext(at(origin, line_no));
        const std::string_view op = tokens[1];
        const auto expectOperands =
            [&](std::size_t lo, std::size_t hi) -> Expected<bool> {
            const std::size_t got = tokens.size() - 2;
            if (got < lo || got > hi) {
                std::string takes = std::to_string(lo);
                if (hi != lo)
                    takes += util::strcatMsg(" to ", hi);
                return Error(ErrorCode::ParseError,
                             util::strcatMsg("op line '", line, "' has ",
                                             got, " operand(s); ", op,
                                             " takes ", takes))
                    .withContext(at(origin, line_no));
            }
            return true;
        };

        if (op == "RD" || op == "WR") {
            const auto shape = expectOperands(1, 2);
            if (!shape.ok())
                return shape.error();
            const auto addr = parseHexAddr(tokens[2]);
            if (!addr.ok())
                return Error(addr.error())
                    .withContext(at(origin, line_no));
            if (tokens.size() == 4) {
                const auto cycles = parseDecimal(
                    tokens[3], "compute-cycles count",
                    std::numeric_limits<std::uint32_t>::max());
                if (!cycles.ok())
                    return Error(cycles.error())
                        .withContext(at(origin, line_no));
                if (cycles.value() > 0)
                    tp.push({sim::OpType::IntOps,
                             static_cast<std::uint32_t>(cycles.value()),
                             0});
            }
            tp.push({op == "RD" ? sim::OpType::Load : sim::OpType::Store,
                     0, addr.value()});
        } else if (op == "INT" || op == "FP") {
            const auto shape = expectOperands(1, 1);
            if (!shape.ok())
                return shape.error();
            const auto count = parseDecimal(
                tokens[2], "op count",
                std::numeric_limits<std::uint32_t>::max());
            if (!count.ok())
                return Error(count.error())
                    .withContext(at(origin, line_no));
            // push(), not intOps(): replicate the dumped op verbatim so
            // a round-tripped program is field-identical.
            tp.push({op == "INT" ? sim::OpType::IntOps
                                 : sim::OpType::FpOps,
                     static_cast<std::uint32_t>(count.value()), 0});
        } else if (op == "BAR" || op == "LOCK" || op == "UNLOCK") {
            const auto shape = expectOperands(1, 1);
            if (!shape.ok())
                return shape.error();
            const auto id = parseDecimal(
                tokens[2], "sync id",
                std::numeric_limits<std::uint64_t>::max());
            if (!id.ok())
                return Error(id.error())
                    .withContext(at(origin, line_no));
            const sim::OpType type = op == "BAR" ? sim::OpType::Barrier
                                    : op == "LOCK" ? sim::OpType::Lock
                                                   : sim::OpType::Unlock;
            tp.push({type, 0, id.value()});
        } else if (op == "END") {
            const auto shape = expectOperands(0, 0);
            if (!shape.ok())
                return shape.error();
            tp.push({sim::OpType::End, 0, 0});
        } else {
            return Error(ErrorCode::ParseError,
                         util::strcatMsg("unknown mnemonic '", op,
                                         "' in line '", line, "'"))
                .withContext(at(origin, line_no));
        }
    }

    if (in_program)
        return Error(ErrorCode::CorruptData,
                     util::strcatMsg("@program n=", program_n,
                                     " (opened at line ", program_line,
                                     ") never reaches @end -- the file "
                                     "is truncated"))
            .withContext(std::string(origin));
    if (!saw_trace_line)
        return Error(ErrorCode::ParseError,
                     "trace has no @trace workload=... scale=... line")
            .withContext(std::string(origin));
    if (file.programs.empty())
        return Error(ErrorCode::ParseError,
                     "trace has no @program sections")
            .withContext(std::string(origin));
    return file;
}

Expected<TraceFile>
loadTrace(const std::string& path)
{
    const auto start = std::chrono::steady_clock::now();
    auto content = util::readFile(path);
    if (!content.ok())
        return Error(content.error())
            .withContext(util::strcatMsg("loadTrace(", path, ")"));
    auto file = parseTrace(content.value(), path);
    const auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    g_trace_loads.fetch_add(1, std::memory_order_relaxed);
    g_trace_load_micros.fetch_add(static_cast<std::uint64_t>(micros),
                                  std::memory_order_relaxed);
    return file;
}

std::string
formatTrace(std::string_view workload, double scale,
            const std::vector<std::pair<int, sim::Program>>& programs)
{
    std::string body;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", scale);
    body += util::strcatMsg("@trace workload=", workload, " scale=", buf,
                            "\n");
    for (const auto& [n, program] : programs) {
        body += util::strcatMsg("@program n=", n,
                                " barriers=", program.n_barriers,
                                " locks=", program.n_locks, "\n");
        for (std::size_t t = 0; t < program.threads.size(); ++t) {
            for (const sim::Op& op : program.threads[t].ops()) {
                body += 'C';
                body += std::to_string(t);
                switch (op.type) {
                case sim::OpType::IntOps:
                    body += util::strcatMsg(" INT ", op.count);
                    break;
                case sim::OpType::FpOps:
                    body += util::strcatMsg(" FP ", op.count);
                    break;
                case sim::OpType::Load:
                case sim::OpType::Store:
                    std::snprintf(buf, sizeof buf, " %s 0x%" PRIx64,
                                  op.type == sim::OpType::Load ? "RD"
                                                               : "WR",
                                  static_cast<std::uint64_t>(op.addr));
                    body += buf;
                    break;
                case sim::OpType::Barrier:
                    body += util::strcatMsg(" BAR ", op.addr);
                    break;
                case sim::OpType::Lock:
                    body += util::strcatMsg(" LOCK ", op.addr);
                    break;
                case sim::OpType::Unlock:
                    body += util::strcatMsg(" UNLOCK ", op.addr);
                    break;
                case sim::OpType::End:
                    body += " END";
                    break;
                }
                body += '\n';
            }
        }
        body += "@end\n";
    }
    std::snprintf(buf, sizeof buf, "#tlppm-trace v1 crc=0x%08x\n",
                  util::crc32(body));
    return buf + body;
}

namespace {

/** One resolved trace spec: the parse, the registry descriptor handed
 *  out to callers, or the sticky error of the first attempt. */
struct TraceEntry
{
    TraceFile file;
    WorkloadInfo info;
    Expected<bool> outcome{true};
};

/** Process-wide spec -> entry map; entries are never removed, so the
 *  WorkloadInfo pointers handed out stay valid for the process's life. */
std::mutex g_registry_mutex;
std::map<std::string, std::unique_ptr<TraceEntry>>& traceRegistry()
{
    static std::map<std::string, std::unique_ptr<TraceEntry>> registry;
    return registry;
}

} // namespace

Expected<const WorkloadInfo*>
traceWorkload(const std::string& spec)
{
    if (!isTraceSpec(spec))
        return Error(ErrorCode::InvalidArgument,
                     util::strcatMsg("'", spec,
                                     "' is not a trace:<path> spec"));
    const std::string path(
        std::string_view(spec).substr(kTracePrefix.size()));
    if (path.empty())
        return Error(ErrorCode::InvalidArgument,
                     "trace spec has an empty path");

    std::lock_guard<std::mutex> lock(g_registry_mutex);
    auto& registry = traceRegistry();
    auto it = registry.find(spec);
    if (it == registry.end()) {
        auto entry = std::make_unique<TraceEntry>();
        auto file = loadTrace(path);
        if (!file.ok()) {
            entry->outcome = Expected<bool>(file.error());
        } else {
            entry->file = std::move(file.value());
            const std::string& name = entry->file.workload;
            // Inherit the suite metadata when the trace replays a suite
            // member so the rendered tables match the generator's byte
            // for byte; foreign names carry their own marker.
            const WorkloadInfo* twin = nullptr;
            for (const WorkloadInfo& info : suite()) {
                if (info.name == name)
                    twin = &info;
            }
            char crc_hex[16];
            std::snprintf(crc_hex, sizeof crc_hex, "%08x",
                          entry->file.crc);
            const TraceFile* trace = &entry->file;
            entry->info = WorkloadInfo{
                name,
                twin ? twin->paper_size : "external trace",
                twin ? twin->scaled_size : "external trace",
                twin ? twin->regime : "trace",
                [trace](int n, double s) {
                    if (quantizedScale(s) != quantizedScale(trace->scale))
                        util::fatal(util::strcatMsg(
                            "trace for '", trace->workload,
                            "' was captured at scale ", trace->scale,
                            ", cannot replay at scale ", s));
                    const auto found = trace->programs.find(n);
                    if (found == trace->programs.end())
                        util::fatal(util::strcatMsg(
                            "trace for '", trace->workload,
                            "' has no @program n=", n, " section"));
                    return found->second;
                },
                util::strcatMsg(spec, "#crc32=", crc_hex)};
        }
        it = registry.emplace(spec, std::move(entry)).first;
    }
    if (!it->second->outcome.ok())
        return it->second->outcome.error();
    return &it->second->info;
}

TraceLoadStats
traceLoadStats()
{
    return {g_trace_loads.load(std::memory_order_relaxed),
            g_trace_load_micros.load(std::memory_order_relaxed)};
}

} // namespace tlp::workloads
