#include "workloads/workload.hpp"

#include "util/logging.hpp"
#include "workloads/trace.hpp"

namespace tlp::workloads {

const std::vector<WorkloadInfo>&
suite()
{
    static const std::vector<WorkloadInfo> entries = {
        {"Barnes", "16K particles", "8K particles", "compute",
         [](int n, double s) { return makeBarnes(n, s); }},
        {"Cholesky", "tk15.O", "900 supernode tasks", "mixed",
         [](int n, double s) { return makeCholesky(n, s); }},
        {"FFT", "64K points", "64K points", "mixed",
         [](int n, double s) { return makeFft(n, s); }},
        {"FMM", "16K particles", "4K particles (heavy multipoles)",
         "compute", [](int n, double s) { return makeFmm(n, s); }},
        {"LU", "512x512 matrix, 16x16 blocks",
         "256x256 matrix, 16x16 blocks", "compute",
         [](int n, double s) { return makeLu(n, s); }},
        {"Ocean", "514x514 ocean", "514x514 ocean", "memory",
         [](int n, double s) { return makeOcean(n, s); }},
        {"Radiosity", "room -ae 5000.0 -en 0.05 -bf 0.1",
         "2K patches, 4K interactions x 2 iters", "mixed",
         [](int n, double s) { return makeRadiosity(n, s); }},
        {"Radix", "1M integers, radix 1024", "1M integers, radix 1024",
         "memory", [](int n, double s) { return makeRadix(n, s); }},
        {"Raytrace", "car", "16K rays over a 2 MB scene", "compute",
         [](int n, double s) { return makeRaytrace(n, s); }},
        {"Volrend", "head", "12K rays over a 1 MB volume", "mixed",
         [](int n, double s) { return makeVolrend(n, s); }},
        {"Water-Nsq", "512 molecules", "512 molecules", "compute",
         [](int n, double s) { return makeWaterNsq(n, s); }},
        {"Water-Sp", "512 molecules", "512 molecules", "compute",
         [](int n, double s) { return makeWaterSp(n, s); }},
    };
    return entries;
}

const WorkloadInfo&
byName(const std::string& name)
{
    for (const WorkloadInfo& info : suite()) {
        if (info.name == name)
            return info;
    }
    util::fatal(util::strcatMsg("workloads: unknown application '", name,
                                "'"));
}

util::Expected<const WorkloadInfo*>
resolve(const std::string& name)
{
    if (isTraceSpec(name))
        return traceWorkload(name);
    for (const WorkloadInfo& info : suite()) {
        if (info.name == name)
            return &info;
    }
    return util::Error(
        util::ErrorCode::InvalidArgument,
        util::strcatMsg("unknown workload '", name,
                        "' (expected a suite name or trace:<path>)"));
}

} // namespace tlp::workloads
