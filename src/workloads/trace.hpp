/**
 * @file
 * Trace-driven workload front-end: a strict parser/loader for per-core
 * text traces that compiles into the same sim::Program representation the
 * synthetic generators emit, so every figure bench, the sweep service,
 * sharding, and the persistent raw-run store work unchanged.
 *
 * ## Format (version 1)
 *
 *     #tlppm-trace v1 crc=0x1a2b3c4d
 *     # free comments and blank lines are allowed anywhere below
 *     @trace workload=FFT scale=0.05
 *     @program n=4 barriers=3 locks=1
 *     C0 INT 150
 *     C0 RD 0x10000
 *     C1 WR 0x10040 25
 *     C0 FP 80
 *     C0 BAR 0
 *     C1 LOCK 0
 *     C1 UNLOCK 0
 *     C0 END
 *     @end
 *
 *  - The optional first line seals the file: `crc` is the CRC32 of every
 *    byte after the first newline. A mismatch (truncation, bit rot, a
 *    hand edit that forgot to re-seal) is refused with a typed
 *    CorruptData error. Files without the header are accepted unsealed;
 *    tlppm_tracegen always writes it.
 *  - `@trace` declares the display workload name (tables render it
 *    exactly like the generator of the same name) and the problem scale
 *    the trace was captured at; replaying at any other scale is refused.
 *  - One `@program n=N ...` section per thread count, holding the op
 *    stream of all N cores; lines from different cores may interleave
 *    freely (each core's own order is its program order).
 *  - Op lines are `C<core> <mnemonic> <operands>`:
 *      RD|WR <hex-addr> [<compute-cycles>]  memory access, optionally
 *                                           preceded by that many integer
 *                                           compute cycles
 *      INT|FP <count>                       integer / floating-point runs
 *      BAR|LOCK|UNLOCK <id>                 synchronization markers
 *      END                                  end of this core's stream
 *    Malformed lines, addresses overflowing 64 bits, and core ids
 *    outside [0, N) are typed ParseErrors naming the offending line.
 *
 * ## Cache identity
 *
 * A loaded trace registers as workload `trace:<path>` whose display name
 * is the embedded workload name but whose cache key is
 * `trace:<path>#crc32=<hex>` (CRC32 of the whole file). The key is what
 * enters RunKey/RawRunKey and the persistent raw store, so editing a
 * trace file changes every key and a stale cached run can never be
 * replayed against new trace content.
 */

#ifndef TLP_WORKLOADS_TRACE_HPP
#define TLP_WORKLOADS_TRACE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/program.hpp"
#include "util/error.hpp"
#include "workloads/workload.hpp"

namespace tlp::workloads {

/** Prefix that marks a workload spec as a trace file reference. */
inline constexpr std::string_view kTracePrefix = "trace:";

/** True when @p spec names a trace file ("trace:<path>"). */
inline bool isTraceSpec(std::string_view spec)
{
    return spec.rfind(kTracePrefix, 0) == 0;
}

/** A fully parsed trace file. */
struct TraceFile
{
    std::string workload; ///< display name (from `@trace workload=`)
    double scale = 1.0;   ///< problem scale the trace was captured at
    std::uint32_t crc = 0; ///< CRC32 of the whole file (cache identity)
    /** One compiled program per thread count (`@program n=` section). */
    std::map<int, sim::Program> programs;
};

/**
 * Parse trace @p text. @p origin names the input in error messages
 * (usually the file path). Format violations are ParseError; a sealed
 * header whose CRC does not match the content (truncation/corruption)
 * is CorruptData.
 */
util::Expected<TraceFile> parseTrace(std::string_view text,
                                     std::string_view origin);

/** readFile() + parseTrace() + load accounting (see traceLoadStats). */
util::Expected<TraceFile> loadTrace(const std::string& path);

/**
 * Serialize @p programs (pairs of thread count and compiled program) as
 * a sealed version-1 trace. parseTrace(formatTrace(...)) reconstructs
 * every op verbatim, so a replayed trace prices and renders exactly like
 * the program it was dumped from.
 */
std::string formatTrace(
    std::string_view workload, double scale,
    const std::vector<std::pair<int, sim::Program>>& programs);

/**
 * The registry entry behind workload spec "trace:<path>": loads the file
 * on first use, caches the parse process-wide, and returns a stable
 * WorkloadInfo whose name is the embedded workload name and whose
 * cache_key carries the content CRC. Errors (unreadable file, format
 * violation, CRC mismatch) surface typed; subsequent calls for the same
 * spec re-return the same outcome without re-reading the file.
 */
util::Expected<const WorkloadInfo*>
traceWorkload(const std::string& spec);

/** Cumulative trace-loading effort of this process (registry cache
 *  misses only — a cached spec costs nothing). */
struct TraceLoadStats
{
    std::uint64_t loads = 0;       ///< trace files read and parsed
    std::uint64_t load_micros = 0; ///< wall time spent doing so [us]
};
TraceLoadStats traceLoadStats();

} // namespace tlp::workloads

#endif // TLP_WORKLOADS_TRACE_HPP
