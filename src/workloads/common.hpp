/**
 * @file
 * Shared building blocks of the workload generators: a bump allocator for
 * the simulated address space, scaling helpers, and the dynamic task-queue
 * emitter several kernels share.
 */

#ifndef TLP_WORKLOADS_COMMON_HPP
#define TLP_WORKLOADS_COMMON_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/program.hpp"
#include "util/rng.hpp"

namespace tlp::workloads {

/** Cache-line granularity all regions align to. */
inline constexpr std::uint64_t kLine = 64;

/** Bump allocator carving named regions out of the simulated memory. */
class AddressSpace
{
  public:
    /** Reserve @p bytes and return the region base (line-aligned). */
    sim::Addr
    alloc(std::uint64_t bytes)
    {
        const sim::Addr base = next_;
        next_ += (bytes + kLine - 1) / kLine * kLine;
        return base;
    }

    /** Total bytes allocated so far. */
    std::uint64_t used() const { return next_ - kBase; }

  private:
    static constexpr sim::Addr kBase = 0x10000;
    sim::Addr next_ = kBase;
};

/** Scale an element count, keeping at least @p floor elements. */
std::uint64_t scaled(std::uint64_t count, double scale,
                     std::uint64_t floor = 1);

/**
 * Emit a read of @p bytes starting at @p addr as line-granular loads
 * (one load per touched cache line).
 */
void loadRegion(sim::ThreadProgram& tp, sim::Addr addr,
                std::uint64_t bytes);

/** Same as loadRegion for stores. */
void storeRegion(sim::ThreadProgram& tp, sim::Addr addr,
                 std::uint64_t bytes);

/**
 * Emit a dynamic task-queue loop: the thread repeatedly grabs the queue
 * lock, dequeues (one load + one store on the queue head), and runs the
 * task body. Tasks are dealt deterministically round-robin so every
 * thread knows its share up front, but each grab still pays the lock and
 * queue-line coherence costs that limit scalability at high thread
 * counts.
 *
 * @param tp        thread stream to append to
 * @param thread    this thread's index
 * @param n_threads thread count
 * @param n_tasks   total number of tasks
 * @param queue_lock lock id protecting the queue
 * @param queue_head address of the shared queue head
 * @param body      emits the work of task t into tp
 */
void taskQueue(sim::ThreadProgram& tp, int thread, int n_threads,
               std::uint64_t n_tasks, std::uint64_t queue_lock,
               sim::Addr queue_head,
               const std::function<void(std::uint64_t task)>& body);

/** Deterministic per-(workload, thread) RNG seed. */
std::uint64_t workloadSeed(const char* name, int thread);

} // namespace tlp::workloads

#endif // TLP_WORKLOADS_COMMON_HPP
