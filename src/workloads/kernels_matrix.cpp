/**
 * @file
 * Matrix/array members of the suite: blocked dense LU, sparse Cholesky,
 * the six-step FFT, and Radix sort.
 */

#include "workloads/workload.hpp"

#include <algorithm>

#include "util/rng.hpp"
#include "workloads/common.hpp"

namespace tlp::workloads {

using sim::Program;
using sim::ThreadProgram;
using util::Rng;

Program
makeLu(int n_threads, double scale)
{
    // Paper: 512x512 matrix, 16x16 blocks. Scaled default: 256x256.
    // Classic blocked right-looking LU: per step, the diagonal owner
    // factors, perimeter blocks update against the diagonal, interior
    // blocks update against their perimeter pair; barriers separate the
    // sub-phases. Parallelism shrinks in late steps (tail imbalance).
    const std::uint64_t dim = scaled(256, scale, 64);
    constexpr std::uint64_t kBlock = 16;
    const std::uint64_t nb = dim / kBlock;
    const std::uint64_t block_bytes = kBlock * kBlock * 8; // 2 KB

    AddressSpace mem;
    const sim::Addr matrix = mem.alloc(nb * nb * block_bytes);
    const auto block_addr = [&](std::uint64_t bi, std::uint64_t bj) {
        return matrix + (bi * nb + bj) * block_bytes;
    };

    Program prog;
    prog.threads.resize(n_threads);

    for (int t = 0; t < n_threads; ++t) {
        ThreadProgram& tp = prog.threads[t];
        std::uint64_t bid = 0;
        for (std::uint64_t k = 0; k < nb; ++k) {
            // Diagonal factorization by its owner.
            if (static_cast<int>(k % n_threads) == t) {
                loadRegion(tp, block_addr(k, k), block_bytes);
                tp.fpOps(1024);
                storeRegion(tp, block_addr(k, k), block_bytes);
            }
            tp.barrier(bid++);

            // Perimeter updates (row k and column k), dealt round-robin.
            std::uint64_t idx = 0;
            for (std::uint64_t m = k + 1; m < nb; ++m, idx += 2) {
                if (static_cast<int>(idx % n_threads) == t) {
                    loadRegion(tp, block_addr(k, k), block_bytes);
                    loadRegion(tp, block_addr(k, m), block_bytes);
                    tp.fpOps(1024);
                    storeRegion(tp, block_addr(k, m), block_bytes);
                }
                if (static_cast<int>((idx + 1) % n_threads) == t) {
                    loadRegion(tp, block_addr(k, k), block_bytes);
                    loadRegion(tp, block_addr(m, k), block_bytes);
                    tp.fpOps(1024);
                    storeRegion(tp, block_addr(m, k), block_bytes);
                }
            }
            tp.barrier(bid++);

            // Interior updates, 2-D scattered ownership.
            for (std::uint64_t i = k + 1; i < nb; ++i) {
                for (std::uint64_t j = k + 1; j < nb; ++j) {
                    if (static_cast<int>((i + j) % n_threads) != t)
                        continue;
                    loadRegion(tp, block_addr(i, k), block_bytes);
                    loadRegion(tp, block_addr(k, j), block_bytes);
                    loadRegion(tp, block_addr(i, j), block_bytes);
                    tp.fpOps(2048);
                    storeRegion(tp, block_addr(i, j), block_bytes);
                }
            }
            tp.barrier(bid++);
        }
        tp.finish();
    }
    prog.n_barriers = 3 * nb;
    return prog;
}

Program
makeCholesky(int n_threads, double scale)
{
    // Paper: tk15.O (sparse supernodal factorization). Modelled as a
    // dynamic task queue of supernode updates with power-law panel sizes,
    // preceded by a serial symbolic-factorization section on thread 0 —
    // the serial head plus queue-lock contention shape the efficiency
    // curve.
    const std::uint64_t n_tasks = scaled(900, scale, 32);
    AddressSpace mem;
    const sim::Addr panels = mem.alloc(n_tasks * 64 * kLine);
    const sim::Addr updates = mem.alloc(2048 * kLine);
    const sim::Addr queue_head = mem.alloc(kLine);

    Program prog;
    prog.threads.resize(n_threads);

    for (int t = 0; t < n_threads; ++t) {
        ThreadProgram& tp = prog.threads[t];
        Rng rng(workloadSeed("cholesky", 0)); // same task sizes for all

        if (t == 0) {
            // Serial symbolic factorization.
            for (std::uint64_t i = 0; i < n_tasks; ++i) {
                tp.load(panels + i * 64 * kLine);
                tp.intOps(24);
            }
            tp.store(queue_head);
        }
        tp.barrier(0);

        Rng sizes(workloadSeed("cholesky-sizes", 0));
        taskQueue(tp, t, n_threads, n_tasks, /*queue_lock=*/0, queue_head,
                  [&](std::uint64_t task) {
                      // Panel sizes follow a long-tailed distribution.
                      const std::uint64_t lines =
                          4 + sizes.below(37) + sizes.below(25);
                      const sim::Addr panel = panels + task * 64 * kLine;
                      for (std::uint64_t l = 0; l < lines; ++l) {
                          tp.load(panel + l * kLine);
                          tp.load(updates +
                                  ((task * 7 + l * 3) % 2048) * kLine);
                          tp.fpOps(48);
                      }
                      for (std::uint64_t l = 0; l < lines; ++l)
                          tp.store(panel + l * kLine);
                  });
        tp.barrier(1);
        tp.finish();
    }
    prog.n_barriers = 2;
    prog.n_locks = 1;
    return prog;
}

Program
makeFft(int n_threads, double scale)
{
    // Paper: 64K complex points, six-step FFT. The two transpose phases
    // are all-to-all: every thread reads every other thread's partition,
    // which is the communication that erodes efficiency at high core
    // counts.
    const std::uint64_t n_points = scaled(65536, scale, 4096);
    std::uint64_t side = 1;
    while (side * side < n_points)
        side *= 2;
    const std::uint64_t row_bytes = side * 16; // complex<double>

    AddressSpace mem;
    const sim::Addr a = mem.alloc(side * row_bytes);
    const sim::Addr b = mem.alloc(side * row_bytes);

    Program prog;
    prog.threads.resize(n_threads);
    const std::uint64_t rows_per_thread = side / n_threads + 1;

    for (int t = 0; t < n_threads; ++t) {
        ThreadProgram& tp = prog.threads[t];
        const std::uint64_t row_lo =
            std::min<std::uint64_t>(side, t * rows_per_thread);
        const std::uint64_t row_hi =
            std::min<std::uint64_t>(side, row_lo + rows_per_thread);
        std::uint64_t bid = 0;

        const auto compute_phase = [&](sim::Addr src, sim::Addr dst) {
            for (std::uint64_t r = row_lo; r < row_hi; ++r) {
                for (std::uint64_t off = 0; off < row_bytes;
                     off += kLine) {
                    tp.load(src + r * row_bytes + off);
                    tp.fpOps(20); // 5 flops x 4 points per line
                    tp.store(dst + r * row_bytes + off);
                }
            }
            tp.barrier(bid++);
        };
        const auto transpose_phase = [&](sim::Addr src, sim::Addr dst) {
            for (std::uint64_t r = row_lo; r < row_hi; ++r) {
                // Gather column r of src (strided across all partitions).
                for (std::uint64_t c = 0; c < side; c += 4) {
                    tp.load(src + c * row_bytes + r * 16);
                    tp.intOps(2);
                }
                for (std::uint64_t off = 0; off < row_bytes;
                     off += kLine) {
                    tp.store(dst + r * row_bytes + off);
                }
            }
            tp.barrier(bid++);
        };

        compute_phase(a, b);
        transpose_phase(b, a);
        compute_phase(a, b);
        transpose_phase(b, a);
        compute_phase(a, b);
        tp.finish();
    }
    prog.n_barriers = 5;
    return prog;
}

Program
makeRadix(int n_threads, double scale)
{
    // Paper: 1M integers, radix 1024; simulated at full size (one digit
    // pass at line granularity). Streaming histogram reads, a short
    // serial global-scan section, and a scattered permutation whose
    // source+destination footprint (8 MB) blows through the 4 MB L2:
    // the suite's memory-bound, power-thrifty member.
    const std::uint64_t n_keys = scaled(1u << 20, scale, 16384);
    constexpr std::uint64_t kBuckets = 1024;
    const std::uint64_t keys_per_line = kLine / 4;
    const std::uint64_t n_lines = n_keys / keys_per_line;

    AddressSpace mem;
    const sim::Addr src = mem.alloc(n_keys * 4);
    const sim::Addr dst = mem.alloc(n_keys * 4);
    const sim::Addr hist = mem.alloc(kBuckets * 4 * n_threads);

    Program prog;
    prog.threads.resize(n_threads);
    const std::uint64_t lines_per_thread = n_lines / n_threads + 1;

    for (int t = 0; t < n_threads; ++t) {
        ThreadProgram& tp = prog.threads[t];
        Rng rng(workloadSeed("radix", t));
        const std::uint64_t lo =
            std::min<std::uint64_t>(n_lines, t * lines_per_thread);
        const std::uint64_t hi =
            std::min<std::uint64_t>(n_lines, lo + lines_per_thread);

        // Histogram: stream the keys, bump local counters.
        for (std::uint64_t l = lo; l < hi; ++l) {
            tp.load(src + l * kLine);
            tp.intOps(static_cast<std::uint32_t>(keys_per_line));
            tp.store(hist + t * kBuckets * 4 +
                     rng.below(kBuckets / 16) * kLine % (kBuckets * 4));
        }
        tp.barrier(0);

        // Serial global prefix scan on thread 0.
        if (t == 0) {
            for (std::uint64_t b = 0; b < kBuckets * n_threads / 16; ++b) {
                tp.load(hist + b * kLine % (kBuckets * 4 * n_threads));
                tp.intOps(8);
            }
        }
        tp.barrier(1);

        // Permutation: read own lines, write to scattered bucket tails
        // (line-granular; each store models a filled destination line).
        for (std::uint64_t l = lo; l < hi; ++l) {
            tp.load(src + l * kLine);
            tp.intOps(static_cast<std::uint32_t>(keys_per_line / 2));
            const std::uint64_t bucket = rng.below(kBuckets);
            const std::uint64_t slot =
                (bucket * (n_lines / kBuckets + 1) + l % 16) % n_lines;
            tp.store(dst + slot * kLine);
        }
        tp.barrier(2);
        tp.finish();
    }
    prog.n_barriers = 3;
    return prog;
}

} // namespace tlp::workloads
