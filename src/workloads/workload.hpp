/**
 * @file
 * The SPLASH-2-like synthetic workload suite (Table 2 of the paper).
 *
 * Each workload is a deterministic generator that compiles into one
 * sim::Program: per-thread streams of compute runs, loads/stores with
 * concrete shared-memory addresses, and barrier/lock markers. The
 * generators reproduce each application's qualitative regime — working-set
 * size, compute/memory mix, sharing pattern, synchronization style, and
 * load (im)balance — rather than its numerics; DESIGN.md documents this
 * substitution and EXPERIMENTS.md the scaled problem sizes.
 *
 * The `scale` knob shrinks problem sizes proportionally (tests use small
 * scales; the figure benches use 1.0).
 */

#ifndef TLP_WORKLOADS_WORKLOAD_HPP
#define TLP_WORKLOADS_WORKLOAD_HPP

#include <functional>
#include <string>
#include <vector>

#include "sim/program.hpp"

namespace tlp::workloads {

/** Generator signature: thread count and problem scale to program. */
using Generator = std::function<sim::Program(int n_threads, double scale)>;

/** Descriptor of one suite member. */
struct WorkloadInfo
{
    std::string name;          ///< SPLASH-2 application name
    std::string paper_size;    ///< problem size used by the paper
    std::string scaled_size;   ///< size this reproduction simulates
    /** Qualitative regime, for documentation/benches:
     *  "compute" | "mixed" | "memory". */
    std::string regime;
    Generator make;
};

/** All twelve suite members, in the paper's Table 2 order. */
const std::vector<WorkloadInfo>& suite();

/** Lookup by (case-sensitive) name; fatal when unknown. */
const WorkloadInfo& byName(const std::string& name);

/** Individual generators (n_threads >= 1, 0 < scale <= 1). */
sim::Program makeBarnes(int n_threads, double scale = 1.0);
sim::Program makeCholesky(int n_threads, double scale = 1.0);
sim::Program makeFft(int n_threads, double scale = 1.0);
sim::Program makeFmm(int n_threads, double scale = 1.0);
sim::Program makeLu(int n_threads, double scale = 1.0);
sim::Program makeOcean(int n_threads, double scale = 1.0);
sim::Program makeRadiosity(int n_threads, double scale = 1.0);
sim::Program makeRadix(int n_threads, double scale = 1.0);
sim::Program makeRaytrace(int n_threads, double scale = 1.0);
sim::Program makeVolrend(int n_threads, double scale = 1.0);
sim::Program makeWaterNsq(int n_threads, double scale = 1.0);
sim::Program makeWaterSp(int n_threads, double scale = 1.0);

/**
 * The power-calibration microbenchmark (§3.3): a compute-bound kernel
 * that keeps every pipeline busy to recreate a quasi-maximum power
 * scenario on one core.
 */
sim::Program makePowerVirus(int n_threads = 1, double scale = 1.0);

} // namespace tlp::workloads

#endif // TLP_WORKLOADS_WORKLOAD_HPP
