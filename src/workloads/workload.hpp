/**
 * @file
 * The SPLASH-2-like synthetic workload suite (Table 2 of the paper).
 *
 * Each workload is a deterministic generator that compiles into one
 * sim::Program: per-thread streams of compute runs, loads/stores with
 * concrete shared-memory addresses, and barrier/lock markers. The
 * generators reproduce each application's qualitative regime — working-set
 * size, compute/memory mix, sharing pattern, synchronization style, and
 * load (im)balance — rather than its numerics; DESIGN.md documents this
 * substitution and EXPERIMENTS.md the scaled problem sizes.
 *
 * The `scale` knob shrinks problem sizes proportionally (tests use small
 * scales; the figure benches use 1.0).
 */

#ifndef TLP_WORKLOADS_WORKLOAD_HPP
#define TLP_WORKLOADS_WORKLOAD_HPP

#include <functional>
#include <string>
#include <vector>

#include "sim/program.hpp"
#include "util/error.hpp"

namespace tlp::workloads {

/** Generator signature: thread count and problem scale to program. */
using Generator = std::function<sim::Program(int n_threads, double scale)>;

/** Descriptor of one suite member. */
struct WorkloadInfo
{
    std::string name;          ///< SPLASH-2 application name
    std::string paper_size;    ///< problem size used by the paper
    std::string scaled_size;   ///< size this reproduction simulates
    /** Qualitative regime, for documentation/benches:
     *  "compute" | "mixed" | "memory". */
    std::string regime;
    Generator make;
    /**
     * Cache identity, when it must differ from the display name. The
     * built-in generators leave it empty (the name IS the identity);
     * trace-backed entries set "trace:<path>#crc32=<hex>" so an edited
     * trace file can never hit a stale cached or stored run, while the
     * display name stays the embedded workload name and the rendered
     * tables match the generator originals byte for byte.
     */
    std::string cache_key = {};

    /** The key runs are cached/stored under (cache_key, else name). */
    const std::string& key() const
    {
        return cache_key.empty() ? name : cache_key;
    }
};

/** All twelve suite members, in the paper's Table 2 order. */
const std::vector<WorkloadInfo>& suite();

/** Lookup by (case-sensitive) name; fatal when unknown. */
const WorkloadInfo& byName(const std::string& name);

/**
 * Error-returning lookup that also accepts trace specs: a plain suite
 * name resolves against suite(); a "trace:<path>" spec loads (and
 * process-wide caches) the trace file behind it. The returned pointer is
 * stable for the life of the process. Unknown names are InvalidArgument;
 * unreadable/corrupt traces surface the loader's typed error.
 */
util::Expected<const WorkloadInfo*> resolve(const std::string& name);

/** Individual generators (n_threads >= 1, 0 < scale <= 1). */
sim::Program makeBarnes(int n_threads, double scale = 1.0);
sim::Program makeCholesky(int n_threads, double scale = 1.0);
sim::Program makeFft(int n_threads, double scale = 1.0);
sim::Program makeFmm(int n_threads, double scale = 1.0);
sim::Program makeLu(int n_threads, double scale = 1.0);
sim::Program makeOcean(int n_threads, double scale = 1.0);
sim::Program makeRadiosity(int n_threads, double scale = 1.0);
sim::Program makeRadix(int n_threads, double scale = 1.0);
sim::Program makeRaytrace(int n_threads, double scale = 1.0);
sim::Program makeVolrend(int n_threads, double scale = 1.0);
sim::Program makeWaterNsq(int n_threads, double scale = 1.0);
sim::Program makeWaterSp(int n_threads, double scale = 1.0);

/**
 * The power-calibration microbenchmark (§3.3): a compute-bound kernel
 * that keeps every pipeline busy to recreate a quasi-maximum power
 * scenario on one core.
 */
sim::Program makePowerVirus(int n_threads = 1, double scale = 1.0);

} // namespace tlp::workloads

#endif // TLP_WORKLOADS_WORKLOAD_HPP
