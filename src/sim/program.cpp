#include "sim/program.hpp"

#include <limits>

#include "util/logging.hpp"

namespace tlp::sim {

namespace {

/** Split large ALU runs so per-op `count` stays in 32 bits and the core
 *  model can interleave timing at a reasonable granularity. */
constexpr std::uint32_t kMaxRun = 1u << 20;

} // namespace

void
ThreadProgram::intOps(std::uint32_t count)
{
    while (count > 0) {
        const std::uint32_t chunk = count > kMaxRun ? kMaxRun : count;
        // Merge adjacent runs to keep streams compact.
        if (!ops_.empty() && ops_.back().type == OpType::IntOps &&
            ops_.back().count <= kMaxRun - chunk) {
            ops_.back().count += chunk;
        } else {
            push({OpType::IntOps, chunk, 0});
        }
        count -= chunk;
    }
}

void
ThreadProgram::fpOps(std::uint32_t count)
{
    while (count > 0) {
        const std::uint32_t chunk = count > kMaxRun ? kMaxRun : count;
        if (!ops_.empty() && ops_.back().type == OpType::FpOps &&
            ops_.back().count <= kMaxRun - chunk) {
            ops_.back().count += chunk;
        } else {
            push({OpType::FpOps, chunk, 0});
        }
        count -= chunk;
    }
}

void
ThreadProgram::finish()
{
    if (!finished())
        push({OpType::End, 0, 0});
}

bool
ThreadProgram::finished() const
{
    return !ops_.empty() && ops_.back().type == OpType::End;
}

std::uint64_t
ThreadProgram::instructionCount() const
{
    std::uint64_t count = 0;
    for (const Op& op : ops_) {
        switch (op.type) {
          case OpType::IntOps:
          case OpType::FpOps:
            count += op.count;
            break;
          case OpType::Load:
          case OpType::Store:
            ++count;
            break;
          default:
            break;
        }
    }
    return count;
}

std::uint64_t
Program::instructionCount() const
{
    std::uint64_t count = 0;
    for (const ThreadProgram& t : threads)
        count += t.instructionCount();
    return count;
}

} // namespace tlp::sim
