#include "sim/config.hpp"

#include "util/logging.hpp"

namespace tlp::sim {

namespace {

void
requirePositive(double value, const char* field, const char* unit)
{
    if (!(value > 0.0)) {
        util::fatal(util::strcatMsg("CmpConfig: ", field, " must be a "
                                    "positive ", unit, ", got ", value));
    }
}

void
requireAtLeast(std::uint64_t value, std::uint64_t min, const char* field)
{
    if (value < min) {
        util::fatal(util::strcatMsg("CmpConfig: ", field, " must be >= ",
                                    min, ", got ", value));
    }
}

void
requireCacheShape(std::uint64_t size, std::uint32_t line,
                  std::uint32_t assoc, const char* cache)
{
    requireAtLeast(size, 1, util::strcatMsg(cache, " size_bytes").c_str());
    requireAtLeast(line, 1,
                   util::strcatMsg(cache, " line_bytes").c_str());
    requireAtLeast(assoc, 1, util::strcatMsg(cache, " assoc").c_str());
    if (static_cast<std::uint64_t>(line) * assoc > size) {
        util::fatal(util::strcatMsg(
            "CmpConfig: ", cache, " line_bytes (", line, ") x assoc (",
            assoc, ") exceeds its size_bytes (", size,
            "); shrink the line/associativity or grow the cache"));
    }
}

} // namespace

void
validateCmpConfig(const CmpConfig& config)
{
    if (config.n_cores < 1 || config.n_cores > 1024) {
        util::fatal(util::strcatMsg(
            "CmpConfig: n_cores must be in [1, 1024], got ",
            config.n_cores));
    }
    requirePositive(config.ipc_int, "ipc_int", "issue rate");
    requirePositive(config.ipc_fp, "ipc_fp", "issue rate");
    requireAtLeast(config.store_buffer_entries, 1,
                   "store_buffer_entries");
    requireCacheShape(config.l1_size_bytes, config.l1_line_bytes,
                      config.l1_assoc, "L1");
    requireAtLeast(config.l1_hit_cycles, 1, "l1_hit_cycles");
    requireCacheShape(config.l2_size_bytes, config.l2_line_bytes,
                      config.l2_assoc, "L2");
    requireAtLeast(config.l2_rt_cycles, 1, "l2_rt_cycles");
    if (config.l2_line_bytes < config.l1_line_bytes) {
        util::fatal(util::strcatMsg(
            "CmpConfig: l2_line_bytes (", config.l2_line_bytes,
            ") must be >= l1_line_bytes (", config.l1_line_bytes,
            ") for inclusive line fills"));
    }
    requireAtLeast(config.bus_occupancy_data, 1, "bus_occupancy_data");
    requireAtLeast(config.bus_occupancy_ctrl, 1, "bus_occupancy_ctrl");
    requireAtLeast(config.c2c_rt_cycles, 1, "c2c_rt_cycles");
    requireAtLeast(config.upgrade_rt_cycles, 1, "upgrade_rt_cycles");
    requirePositive(config.memory_rt_ns, "memory_rt_ns", "latency [ns]");
    requireAtLeast(config.barrier_release_cycles, 1,
                   "barrier_release_cycles");
    requireAtLeast(config.lock_acquire_cycles, 1, "lock_acquire_cycles");
    requireAtLeast(config.lock_handoff_cycles, 1, "lock_handoff_cycles");
    requirePositive(config.f_nominal_hz, "f_nominal_hz",
                    "frequency [Hz]");
}

} // namespace tlp::sim
