#include "sim/sync.hpp"

#include "util/logging.hpp"

namespace tlp::sim {

BarrierManager::BarrierManager(const CmpConfig& config, int n_threads,
                               EventQueue& queue, util::StatRegistry& stats)
    : config_(config), n_threads_(n_threads), queue_(&queue),
      stats_(&stats)
{
    if (n_threads < 1)
        util::fatal("BarrierManager: need at least one thread");
}

void
BarrierManager::arrive(int core)
{
    waiting_.push_back(static_cast<std::uint32_t>(core));
    if (static_cast<int>(waiting_.size()) < n_threads_)
        return;

    // Last arrival releases everyone; the release notification fans out
    // over the bus.
    ++episodes_;
    stats_->counter("sync.barrier_episodes").increment();
    stats_->counter("bus.transactions").increment();
    for (const std::uint32_t waiter : waiting_) {
        queue_->postIn(config_.barrier_release_cycles,
                       EventKind::BarrierRelease, waiter);
    }
    waiting_.clear();
}

LockManager::LockManager(const CmpConfig& config, EventQueue& queue,
                         util::StatRegistry& stats)
    : config_(config), queue_(&queue), stats_(&stats)
{
}

void
LockManager::acquire(std::uint64_t id, int core)
{
    LockState& lock = locks_[id];
    stats_->counter("sync.lock_acquires").increment();
    stats_->counter("bus.transactions").increment();
    if (!lock.busy) {
        lock.busy = true;
        lock.owner = core;
        queue_->postIn(config_.lock_acquire_cycles, EventKind::LockGrant,
                       static_cast<std::uint32_t>(core));
    } else {
        stats_->counter("sync.lock_contended").increment();
        lock.waiters.push_back(core);
    }
}

void
LockManager::release(std::uint64_t id, int core)
{
    const auto it = locks_.find(id);
    if (it == locks_.end() || !it->second.busy)
        util::fatal(util::strcatMsg("LockManager: release of free lock ",
                                    id));
    LockState& lock = it->second;
    if (lock.owner != core) {
        util::fatal(util::strcatMsg("LockManager: lock ", id, " held by ",
                                    lock.owner, ", released by ", core));
    }

    if (lock.waiters.empty()) {
        lock.busy = false;
        lock.owner = -1;
        return;
    }
    const int next = lock.waiters.front();
    lock.waiters.pop_front();
    lock.owner = next;
    stats_->counter("bus.transactions").increment();
    queue_->postIn(config_.lock_handoff_cycles, EventKind::LockGrant,
                   static_cast<std::uint32_t>(next));
}

bool
LockManager::held(std::uint64_t id) const
{
    const auto it = locks_.find(id);
    return it != locks_.end() && it->second.busy;
}

} // namespace tlp::sim
