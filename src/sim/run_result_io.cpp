#include "sim/run_result_io.hpp"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/logging.hpp"

namespace tlp::sim {

namespace {

void
appendU64(std::string& out, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out += buf;
}

void
appendDouble(std::string& out, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
}

/** Cursor over the serialized text; every expect/parse step advances
 *  it or trips `failed`, so callers chain steps and check once. */
struct Cursor
{
    const char* p;
    const char* end;
    bool failed = false;

    void expect(const char* literal)
    {
        const std::size_t len = std::strlen(literal);
        if (failed || static_cast<std::size_t>(end - p) < len ||
            std::memcmp(p, literal, len) != 0) {
            failed = true;
            return;
        }
        p += len;
    }

    bool peek(char c) const { return !failed && p < end && *p == c; }

    std::uint64_t u64()
    {
        if (failed)
            return 0;
        char* stop = nullptr;
        errno = 0;
        const unsigned long long value = std::strtoull(p, &stop, 10);
        if (stop == p || errno == ERANGE) {
            failed = true;
            return 0;
        }
        p = stop;
        return value;
    }

    double f64()
    {
        if (failed)
            return 0.0;
        char* stop = nullptr;
        errno = 0;
        const double value = std::strtod(p, &stop);
        if (stop == p ||
            (errno == ERANGE && (value >= HUGE_VAL || value <= -HUGE_VAL))) {
            failed = true;
            return 0.0;
        }
        p = stop;
        return value;
    }

    /** `"name"` — registry names never embed quotes or escapes. */
    std::string name()
    {
        expect("\"");
        if (failed)
            return {};
        const char* close =
            static_cast<const char*>(std::memchr(p, '"', end - p));
        if (close == nullptr) {
            failed = true;
            return {};
        }
        std::string out(p, close);
        p = close + 1;
        return out;
    }
};

} // namespace

std::string
formatRunResult(const RunResult& result)
{
    std::string out;
    out.reserve(512 + 64 * result.core_cycles.size());
    out += "{\"cycles\":";
    appendU64(out, result.cycles);
    out += ",\"freq_hz\":";
    appendDouble(out, result.freq_hz);
    out += ",\"seconds\":";
    appendDouble(out, result.seconds);
    out += ",\"instructions\":";
    appendU64(out, result.instructions);
    out += ",\"n_threads\":";
    appendU64(out, static_cast<std::uint64_t>(result.n_threads));
    out += ",\"coherent\":";
    out += result.coherent ? '1' : '0';
    out += ",\"events\":";
    appendU64(out, result.events);
    out += ",\"qhw\":";
    appendU64(out, result.queue_high_water);
    out += ",\"cores\":[";
    for (std::size_t i = 0; i < result.core_cycles.size(); ++i) {
        const CoreCycleBreakdown& c = result.core_cycles[i];
        if (i)
            out += ',';
        out += '[';
        appendU64(out, c.busy);
        out += ',';
        appendU64(out, c.stall_mem);
        out += ',';
        appendU64(out, c.stall_sync);
        out += ']';
    }
    out += "],\"ctr\":{";
    bool first = true;
    for (const auto& [name, counter] : result.stats.counters()) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += name;
        out += "\":";
        appendU64(out, counter.value());
    }
    out += "},\"acc\":{";
    first = true;
    for (const auto& [name, acc] : result.stats.accumulators()) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += name;
        out += "\":[";
        appendU64(out, acc.count());
        out += ',';
        appendDouble(out, acc.sum());
        out += ',';
        appendDouble(out, acc.min());
        out += ',';
        appendDouble(out, acc.max());
        out += ']';
    }
    out += "}}";
    return out;
}

util::Expected<RunResult>
parseRunResult(const std::string& text)
{
    Cursor cur{text.c_str(), text.c_str() + text.size()};
    RunResult result;
    cur.expect("{\"cycles\":");
    result.cycles = cur.u64();
    cur.expect(",\"freq_hz\":");
    result.freq_hz = cur.f64();
    cur.expect(",\"seconds\":");
    result.seconds = cur.f64();
    cur.expect(",\"instructions\":");
    result.instructions = cur.u64();
    cur.expect(",\"n_threads\":");
    result.n_threads = static_cast<int>(cur.u64());
    cur.expect(",\"coherent\":");
    if (cur.peek('1')) {
        result.coherent = true;
        cur.expect("1");
    } else {
        result.coherent = false;
        cur.expect("0");
    }
    cur.expect(",\"events\":");
    result.events = cur.u64();
    cur.expect(",\"qhw\":");
    result.queue_high_water = cur.u64();
    cur.expect(",\"cores\":[");
    while (!cur.failed && !cur.peek(']')) {
        CoreCycleBreakdown c;
        cur.expect("[");
        c.busy = cur.u64();
        cur.expect(",");
        c.stall_mem = cur.u64();
        cur.expect(",");
        c.stall_sync = cur.u64();
        cur.expect("]");
        result.core_cycles.push_back(c);
        if (cur.peek(','))
            cur.expect(",");
    }
    cur.expect("],\"ctr\":{");
    while (!cur.failed && !cur.peek('}')) {
        const std::string name = cur.name();
        cur.expect(":");
        const std::uint64_t value = cur.u64();
        if (!cur.failed)
            result.stats.counter(name).increment(value);
        if (cur.peek(','))
            cur.expect(",");
    }
    cur.expect("},\"acc\":{");
    while (!cur.failed && !cur.peek('}')) {
        const std::string name = cur.name();
        cur.expect(":[");
        const std::uint64_t count = cur.u64();
        cur.expect(",");
        const double sum = cur.f64();
        cur.expect(",");
        const double min = cur.f64();
        cur.expect(",");
        const double max = cur.f64();
        cur.expect("]");
        if (!cur.failed)
            result.stats.accumulator(name).restore(count, sum, min, max);
        if (cur.peek(','))
            cur.expect(",");
    }
    cur.expect("}}");
    if (cur.failed || cur.p != cur.end)
        return util::Error{util::ErrorCode::CorruptData,
                           "malformed RunResult record"};
    return result;
}

} // namespace tlp::sim
