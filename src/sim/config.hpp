/**
 * @file
 * Configuration of the simulated CMP (Table 1 of the paper).
 *
 * Latencies are in core cycles except the memory round trip, which is in
 * nanoseconds: with chip-wide DVFS the on-chip latencies are constant in
 * cycles while the memory round trip is constant in *time*, so its cost in
 * processor cycles shrinks as the chip is scaled down — the effect behind
 * the paper's memory-bound-application observations (§3.1, §4).
 */

#ifndef TLP_SIM_CONFIG_HPP
#define TLP_SIM_CONFIG_HPP

#include <cstdint>

namespace tlp::sim {

/** Full machine configuration with the paper's Table 1 defaults. */
struct CmpConfig
{
    int n_cores = 16;               ///< 16-way CMP

    // Core (Alpha 21264-like abstraction).
    double ipc_int = 2.0;           ///< sustained integer ops per cycle
    double ipc_fp = 2.0;            ///< two FP pipes (add + multiply)
    std::uint32_t store_buffer_entries = 8;

    // Private L1 caches: 64 KB, 64 B lines, 2-way, 2-cycle round trip.
    std::uint64_t l1_size_bytes = 64 * 1024;
    std::uint32_t l1_line_bytes = 64;
    std::uint32_t l1_assoc = 2;
    std::uint32_t l1_hit_cycles = 2;

    // Shared L2: 4 MB, 128 B lines, 8-way, 12-cycle round trip.
    std::uint64_t l2_size_bytes = 4 * 1024 * 1024;
    std::uint32_t l2_line_bytes = 128;
    std::uint32_t l2_assoc = 8;
    std::uint32_t l2_rt_cycles = 12;      ///< L1-miss/L2-hit round trip

    // Snooping bus.
    std::uint32_t bus_occupancy_data = 6;  ///< cycles held per data txn
    std::uint32_t bus_occupancy_ctrl = 3;  ///< upgrades / writebacks
    std::uint32_t c2c_rt_cycles = 10;      ///< cache-to-cache round trip
    std::uint32_t upgrade_rt_cycles = 5;   ///< BusUpgr completion

    // Off-chip memory: 75 ns round trip, own clock domain.
    double memory_rt_ns = 75.0;

    // Synchronization costs.
    std::uint32_t barrier_release_cycles = 10;
    std::uint32_t lock_acquire_cycles = 14; ///< uncontended RMW via L2
    std::uint32_t lock_handoff_cycles = 16; ///< contended transfer

    // Nominal operating point (65 nm EV6 scaled, Table 1).
    double f_nominal_hz = 3.2e9;

    /**
     * Ablation knob: when true, the memory clock scales with the chip
     * clock (the analytical model's system-wide DVFS assumption), so the
     * memory round trip stays constant in *cycles*. The paper's
     * experimental model keeps this false: chip-level DVFS narrows the
     * processor-memory gap (§3.1).
     */
    bool scale_memory_with_chip = false;

    /** Memory round trip in core cycles at chip frequency @p f_hz. */
    std::uint32_t
    memoryCycles(double f_hz) const
    {
        const double f_eff = scale_memory_with_chip ? f_nominal_hz : f_hz;
        const double cycles = memory_rt_ns * 1e-9 * f_eff;
        return cycles < 1.0 ? 1u : static_cast<std::uint32_t>(cycles + 0.5);
    }

    /**
     * Sanity-check every field, throwing FatalError with the offending
     * field named and the accepted range spelled out. Invoked at
     * Experiment construction so a bad sweep configuration fails up
     * front, not as garbage rows minutes in.
     */
    void validate() const;
};

void validateCmpConfig(const CmpConfig& config);

inline void
CmpConfig::validate() const
{
    validateCmpConfig(*this);
}

} // namespace tlp::sim

#endif // TLP_SIM_CONFIG_HPP
