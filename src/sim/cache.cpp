#include "sim/cache.hpp"

#include <algorithm>
#include <bit>

#include "util/logging.hpp"

namespace tlp::sim {

const char*
mesiName(Mesi state)
{
    switch (state) {
      case Mesi::Invalid:
        return "I";
      case Mesi::Shared:
        return "S";
      case Mesi::Exclusive:
        return "E";
      case Mesi::Modified:
        return "M";
    }
    return "?";
}

CacheArray::CacheArray(std::uint64_t size_bytes, std::uint32_t line_bytes,
                       std::uint32_t assoc)
    : line_bytes_(line_bytes), assoc_(assoc)
{
    // Line size >= 2 also guarantees the all-ones invalid-tag sentinel is
    // never a legal (line-aligned) tag.
    if (line_bytes < 2 || !std::has_single_bit(line_bytes))
        util::fatal("CacheArray: line size must be a power of two >= 2");
    if (assoc == 0)
        util::fatal("CacheArray: associativity must be positive");
    const std::uint64_t way_bytes =
        static_cast<std::uint64_t>(line_bytes) * assoc;
    if (size_bytes == 0 || size_bytes % way_bytes != 0)
        util::fatal("CacheArray: size must be a multiple of line*assoc");
    n_sets_ = size_bytes / way_bytes;
    line_mask_ = line_bytes_ - 1;
    line_shift_ = static_cast<std::uint32_t>(std::countr_zero(line_bytes_));
    sets_pow2_ = std::has_single_bit(n_sets_);
    set_mask_ = sets_pow2_ ? n_sets_ - 1 : 0;
    lines_.resize(n_sets_ * assoc_);
}

Mesi
CacheArray::state(Addr addr) const
{
    const Line* line = find(addr);
    return line ? line->state : Mesi::Invalid;
}

std::optional<Victim>
CacheArray::insert(Addr addr, Mesi state)
{
    if (state == Mesi::Invalid)
        util::panic("CacheArray::insert: cannot insert an Invalid line");

    if (Line* hit = find(addr)) {
        hit->state = state;
        hit->lru = ++lru_clock_;
        return std::nullopt;
    }

    Line* set = &lines_[setIndex(addr) * assoc_];
    Line* slot = nullptr;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (set[w].state == Mesi::Invalid) {
            slot = &set[w];
            break;
        }
        if (!slot || set[w].lru < slot->lru)
            slot = &set[w];
    }

    std::optional<Victim> victim;
    if (slot->state != Mesi::Invalid)
        victim = Victim{slot->tag, slot->state};

    slot->tag = lineAddr(addr);
    slot->state = state;
    slot->lru = ++lru_clock_;
    return victim;
}

void
CacheArray::setState(Addr addr, Mesi state)
{
    Line* line = find(addr);
    if (!line) {
        util::panic(util::strcatMsg("CacheArray::setState: line 0x",
                                    lineAddr(addr), " absent"));
    }
    if (state == Mesi::Invalid) {
        line->state = Mesi::Invalid;
        line->tag = kInvalidTag;
        return;
    }
    line->state = state;
}

Mesi
CacheArray::invalidate(Addr addr)
{
    Line* line = find(addr);
    if (!line)
        return Mesi::Invalid;
    const Mesi prev = line->state;
    line->state = Mesi::Invalid;
    line->tag = kInvalidTag;
    return prev;
}

void
CacheArray::touch(Addr addr)
{
    Line* line = find(addr);
    if (!line)
        util::panic("CacheArray::touch: line absent");
    line->lru = ++lru_clock_;
}

std::uint64_t
CacheArray::validLines() const
{
    std::uint64_t count = 0;
    for (const Line& line : lines_) {
        if (line.state != Mesi::Invalid)
            ++count;
    }
    return count;
}

void
CacheArray::reset()
{
    std::fill(lines_.begin(), lines_.end(), Line{});
    lru_clock_ = 0;
}

} // namespace tlp::sim
