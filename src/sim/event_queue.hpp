/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global event queue drives the CMP model. Events are compact
 * 32-byte typed records (a tagged union over the simulator's event
 * taxonomy: core resume/issue, memory completion, bus grant, store-buffer
 * drain, barrier/lock grants, thread finish) dispatched by a caller-
 * supplied handler — the hot loop performs no indirect calls and no
 * per-event allocation. A generic closure event (EventKind::Callback,
 * payload in a recycled side-slot pool) remains for tests and ad-hoc
 * callers.
 *
 * Determinism contract: events execute in strictly increasing
 * (when, seq) order, where seq is the schedule-call order. seq is unique,
 * so the order is total — any correct priority queue pops the identical
 * sequence. The heap is a 4-ary indexed array heap: shallower than a
 * binary heap and with all four children of a node on one cache line, so
 * the push/pop churn of the simulator (one push per pop in steady state)
 * touches fewer lines than std::push_heap/std::pop_heap over fat
 * closure-carrying entries ever could. Capacity survives reset() and is
 * pre-reserved from the previous run's high-water mark.
 */

#ifndef TLP_SIM_EVENT_QUEUE_HPP
#define TLP_SIM_EVENT_QUEUE_HPP

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/logging.hpp"
#include "util/small_function.hpp"
#include "util/watchdog.hpp"

namespace tlp::sim {

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Scheduled continuation for generic Callback events; inline capacity
 *  covers every closure the tests and benches schedule. */
using EventFn = util::SmallFunction<64>;

/**
 * The simulator's event taxonomy. `arg` is a core id except for
 * Callback (side-slot index); `addr` is a byte address or lock id;
 * `aux` packs the bus transaction kind and completion routing of a
 * BusGrant (see MemorySystem).
 */
enum class EventKind : std::uint8_t {
    Callback,       ///< invoke the closure in side slot `arg`
    CoreResume,     ///< core `arg` re-enters its execute loop
    IssueLoad,      ///< core `arg` presents a load for `addr`
    IssueStore,     ///< core `arg` presents a store for `addr`
    IssueBarrier,   ///< core `arg` arrives at the global barrier
    IssueLock,      ///< core `arg` requests lock id `addr`
    IssueUnlock,    ///< core `arg` releases lock id `addr` and continues
    CoreFinish,     ///< core `arg` retires its End op
    MemDone,        ///< load data ready for core `arg`
    StoreAccept,    ///< store of core `arg` occupies a buffer slot
    BusGrant,       ///< bus grants the transaction packed in (aux, addr)
    StoreDrained,   ///< head store of core `arg`'s buffer performed
    BarrierRelease, ///< barrier releases core `arg`
    LockGrant,      ///< lock hands over to core `arg`
};

/** One scheduled event: a plain 32-byte record, no indirection. */
struct Event
{
    Cycle when = 0;
    std::uint64_t seq = 0;
    std::uint64_t addr = 0;
    std::uint32_t arg = 0;
    EventKind kind = EventKind::Callback;
    std::uint8_t aux = 0;
};

static_assert(sizeof(Event) == 32, "Event must stay one compact record");

/** A deterministic min-queue of typed events over (cycle, sequence). */
class EventQueue
{
  public:
    /** nextEventTime() when no event is pending. */
    static constexpr Cycle kNever = ~Cycle{0};

    /** Current simulation time; only advances inside run(). */
    Cycle now() const { return now_; }

    /**
     * Schedule a typed event at absolute cycle @p when (>= now).
     * Scheduling in the past is a fatal internal error.
     */
    void
    post(Cycle when, EventKind kind, std::uint32_t arg,
         std::uint64_t addr = 0, std::uint8_t aux = 0)
    {
        if (when < now_) {
            util::panic(util::strcatMsg(
                "EventQueue: scheduling in the past (", when, " < ", now_,
                ")"));
        }
        push(Event{when, next_seq_++, addr, arg, kind, aux});
    }

    /** Schedule a typed event @p delta cycles from now. */
    void
    postIn(Cycle delta, EventKind kind, std::uint32_t arg,
           std::uint64_t addr = 0, std::uint8_t aux = 0)
    {
        post(now_ + delta, kind, arg, addr, aux);
    }

    /** Schedule closure @p fn at absolute cycle @p when (>= now). */
    void schedule(Cycle when, EventFn fn);

    /** Schedule closure @p fn @p delta cycles from now. */
    void scheduleIn(Cycle delta, EventFn fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Maximum pending() observed since construction or reset(). */
    std::size_t highWater() const { return high_water_; }

    /**
     * Execution time of the earliest pending event, kNever when idle.
     * The L1-hit fast path keys off this: an access at time t whose
     * completion precedes every pending event cannot be perturbed by (or
     * perturb) any other actor, so it may be resolved inline.
     */
    Cycle nextEventTime() const
    {
        return heap_.empty() ? kNever : heap_.front().when;
    }

    /**
     * Run until the queue drains or @p max_events have executed,
     * dispatching each typed event to @p handler. Callback events are
     * resolved internally and never reach the handler. On entry the heap
     * is pre-reserved to the previous run's high-water mark so
     * steady-state execution never reallocates.
     * @return number of events executed.
     */
    template <typename Handler,
              typename = std::enable_if_t<
                  std::is_invocable_v<Handler&, const Event&>>>
    std::uint64_t
    run(Handler&& handler, std::uint64_t max_events = ~0ull)
    {
        if (reserve_hint_ > heap_.capacity())
            heap_.reserve(reserve_hint_);

        std::uint64_t executed = 0;
        while (!heap_.empty() && executed < max_events) {
            // Watchdog poll: amortized over 16K events so an armed
            // per-point deadline costs nothing measurable, but a runaway
            // simulation is cut short instead of hanging its sweep worker.
            if ((executed & 0x3FFFu) == 0u)
                util::checkPointDeadline("EventQueue::run");
            const Event event = heap_.front();
            popRoot();
            now_ = event.when;
            if (event.kind == EventKind::Callback)
                invokeCallback(event.arg);
            else
                handler(event);
            ++executed;
        }
        reserve_hint_ = std::max(reserve_hint_, high_water_);
        return executed;
    }

    /**
     * Run a queue that only holds Callback events (tests, benches). A
     * typed event without a dispatcher is a fatal internal error.
     */
    std::uint64_t
    run(std::uint64_t max_events = ~0ull)
    {
        return run(
            [](const Event&) {
                util::panic("EventQueue: typed event without a dispatcher");
            },
            max_events);
    }

    /**
     * Restore the pristine state (time 0, empty, sequence 0) while
     * keeping the heap's allocation, so a queue can be reused across
     * simulation runs without re-growing its storage. The high-water mark
     * of the finished run is retained as the next run's reserve hint.
     */
    void reset();

  private:
    /** Strict (when, seq) order; seq is unique, so never equal. */
    static bool
    before(const Event& a, const Event& b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /** 4-ary sift-up insertion (hole-bubbling, no swaps). */
    void
    push(const Event& event)
    {
        std::size_t i = heap_.size();
        heap_.push_back(event);
        while (i > 0) {
            const std::size_t parent = (i - 1) >> 2;
            if (!before(event, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = event;
        if (heap_.size() > high_water_)
            high_water_ = heap_.size();
    }

    /** Remove the minimum; 4-ary sift-down of the displaced tail. */
    void
    popRoot()
    {
        const Event tail = heap_.back();
        heap_.pop_back();
        const std::size_t n = heap_.size();
        if (n == 0)
            return;
        std::size_t i = 0;
        for (;;) {
            const std::size_t first = 4 * i + 1;
            if (first >= n)
                break;
            std::size_t best = first;
            const std::size_t last = std::min(first + 4, n);
            for (std::size_t c = first + 1; c < last; ++c) {
                if (before(heap_[c], heap_[best]))
                    best = c;
            }
            if (!before(heap_[best], tail))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = tail;
    }

    void invokeCallback(std::uint32_t slot);

    std::vector<Event> heap_;
    std::vector<EventFn> slots_;            ///< Callback payloads
    std::vector<std::uint32_t> free_slots_; ///< recycled slot indices
    Cycle now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::size_t high_water_ = 0;
    std::size_t reserve_hint_ = 0; ///< previous run's high-water mark
};

} // namespace tlp::sim

#endif // TLP_SIM_EVENT_QUEUE_HPP
