/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global event queue drives the CMP model: cores, the bus, and
 * the memory system schedule continuation closures at absolute cycle
 * times. Ties are broken by insertion order, which (together with the
 * FIFO bus arbiter) makes whole-chip simulations bit-for-bit
 * deterministic.
 *
 * Continuations are stored in a small-buffer-optimized callable
 * (util::SmallFunction) rather than std::function: every closure the
 * simulator schedules fits the inline buffer, so the hot loop performs no
 * per-event heap allocation. The heap itself is an explicit std::vector
 * (std::push_heap/std::pop_heap) so its capacity survives reset() and can
 * be pre-reserved from the previous run's high-water mark.
 */

#ifndef TLP_SIM_EVENT_QUEUE_HPP
#define TLP_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <vector>

#include "util/small_function.hpp"

namespace tlp::sim {

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Scheduled continuation; inline capacity covers every simulator
 *  closure (the largest captures a bus Transaction plus `this`). */
using EventFn = util::SmallFunction<64>;

/** A deterministic min-heap event queue over (cycle, sequence). */
class EventQueue
{
  public:
    /** Current simulation time; only advances inside run(). */
    Cycle now() const { return now_; }

    /** Schedule @p fn at absolute cycle @p when (>= now). Scheduling in
     *  the past is a fatal error. */
    void schedule(Cycle when, EventFn fn);

    /** Schedule @p fn @p delta cycles from now. */
    void scheduleIn(Cycle delta, EventFn fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Maximum pending() observed since construction or reset(). */
    std::size_t highWater() const { return high_water_; }

    /**
     * Run until the queue drains or @p max_events have executed. On
     * entry the heap is pre-reserved to the previous run's high-water
     * mark so steady-state execution never reallocates.
     * @return number of events executed.
     */
    std::uint64_t run(std::uint64_t max_events = ~0ull);

    /**
     * Restore the pristine state (time 0, empty, sequence 0) while
     * keeping the heap's allocation, so a queue can be reused across
     * simulation runs without re-growing its storage. The high-water mark
     * of the finished run is retained as the next run's reserve hint.
     */
    void reset();

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        EventFn fn;
    };
    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::vector<Entry> heap_;
    Cycle now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::size_t high_water_ = 0;
    std::size_t reserve_hint_ = 0; ///< previous run's high-water mark
};

} // namespace tlp::sim

#endif // TLP_SIM_EVENT_QUEUE_HPP
