/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global event queue drives the CMP model: cores, the bus, and
 * the memory system schedule continuation closures at absolute cycle
 * times. Ties are broken by insertion order, which (together with the
 * FIFO bus arbiter) makes whole-chip simulations bit-for-bit
 * deterministic.
 */

#ifndef TLP_SIM_EVENT_QUEUE_HPP
#define TLP_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace tlp::sim {

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Scheduled continuation. */
using EventFn = std::function<void()>;

/** A deterministic min-heap event queue over (cycle, sequence). */
class EventQueue
{
  public:
    /** Current simulation time; only advances inside run(). */
    Cycle now() const { return now_; }

    /** Schedule @p fn at absolute cycle @p when (>= now). Scheduling in
     *  the past is a fatal error. */
    void schedule(Cycle when, EventFn fn);

    /** Schedule @p fn @p delta cycles from now. */
    void scheduleIn(Cycle delta, EventFn fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Run until the queue drains or @p max_events have executed.
     * @return number of events executed.
     */
    std::uint64_t run(std::uint64_t max_events = ~0ull);

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        EventFn fn;
    };
    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Cycle now_ = 0;
    std::uint64_t next_seq_ = 0;
};

} // namespace tlp::sim

#endif // TLP_SIM_EVENT_QUEUE_HPP
