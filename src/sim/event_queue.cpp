#include "sim/event_queue.hpp"

#include "util/logging.hpp"

namespace tlp::sim {

void
EventQueue::schedule(Cycle when, EventFn fn)
{
    if (when < now_) {
        util::panic(util::strcatMsg("EventQueue: scheduling in the past (",
                                    when, " < ", now_, ")"));
    }
    heap_.push(Entry{when, next_seq_++, std::move(fn)});
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    while (!heap_.empty() && executed < max_events) {
        // Move the closure out before popping so it can schedule freely.
        Entry entry = std::move(const_cast<Entry&>(heap_.top()));
        heap_.pop();
        now_ = entry.when;
        entry.fn();
        ++executed;
    }
    return executed;
}

} // namespace tlp::sim
