#include "sim/event_queue.hpp"

#include <algorithm>

namespace tlp::sim {

void
EventQueue::schedule(Cycle when, EventFn fn)
{
    // Closure payloads live in a recycled side-slot pool so the heap
    // itself stays an array of 32-byte plain records.
    std::uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        slots_[slot] = std::move(fn);
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(std::move(fn));
    }
    post(when, EventKind::Callback, slot);
}

void
EventQueue::invokeCallback(std::uint32_t slot)
{
    // Move the closure out and free its slot before invoking, so the
    // callback can schedule further events (possibly reusing the slot).
    EventFn fn = std::move(slots_[slot]);
    free_slots_.push_back(slot);
    fn();
}

void
EventQueue::reset()
{
    reserve_hint_ = std::max(reserve_hint_, high_water_);
    heap_.clear();
    slots_.clear();
    free_slots_.clear();
    now_ = 0;
    next_seq_ = 0;
    high_water_ = 0;
}

} // namespace tlp::sim
