#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/watchdog.hpp"

namespace tlp::sim {

void
EventQueue::schedule(Cycle when, EventFn fn)
{
    if (when < now_) {
        util::panic(util::strcatMsg("EventQueue: scheduling in the past (",
                                    when, " < ", now_, ")"));
    }
    heap_.push_back(Entry{when, next_seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    high_water_ = std::max(high_water_, heap_.size());
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    if (reserve_hint_ > heap_.capacity())
        heap_.reserve(reserve_hint_);

    std::uint64_t executed = 0;
    while (!heap_.empty() && executed < max_events) {
        // Watchdog poll: amortized over 16K events so an armed per-point
        // deadline costs nothing measurable, but a runaway simulation is
        // cut short instead of hanging its sweep worker.
        if ((executed & 0x3FFFu) == 0u)
            util::checkPointDeadline("EventQueue::run");
        // Move the closure out before popping so it can schedule freely.
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        Entry entry = std::move(heap_.back());
        heap_.pop_back();
        now_ = entry.when;
        entry.fn();
        ++executed;
    }
    reserve_hint_ = std::max(reserve_hint_, high_water_);
    return executed;
}

void
EventQueue::reset()
{
    reserve_hint_ = std::max(reserve_hint_, high_water_);
    heap_.clear();
    now_ = 0;
    next_seq_ = 0;
    high_water_ = 0;
}

} // namespace tlp::sim
