/**
 * @file
 * Lossless one-line JSON serialization of sim::RunResult for the
 * persistent raw-run store.
 *
 * Doubles are printed with %.17g, which round-trips every finite
 * IEEE-754 double exactly through strtod, so a deserialized result
 * prices byte-identically to the in-memory original. The full
 * telemetry is carried: per-core cycle breakdowns, the kernel event
 * and queue-high-water counts, and the complete StatRegistry
 * (counters as exact integers, accumulators as their four-value
 * state). parseRunResult() is a strict sequential parser of exactly
 * the format formatRunResult() emits — any deviation is CorruptData,
 * which the store treats as quarantine-and-recompute.
 */

#ifndef TLP_SIM_RUN_RESULT_IO_HPP
#define TLP_SIM_RUN_RESULT_IO_HPP

#include <string>

#include "sim/cmp.hpp"
#include "util/error.hpp"

namespace tlp::sim {

/** @return @p result as one JSON object text (no trailing newline). */
std::string formatRunResult(const RunResult& result);

/** Inverse of formatRunResult(); CorruptData on any malformation. */
util::Expected<RunResult> parseRunResult(const std::string& text);

} // namespace tlp::sim

#endif // TLP_SIM_RUN_RESULT_IO_HPP
