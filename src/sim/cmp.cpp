#include "sim/cmp.hpp"

#include <cstdlib>
#include <memory>
#include <vector>

#include "sim/core.hpp"
#include "sim/event_queue.hpp"
#include "sim/memory_system.hpp"
#include "sim/sync.hpp"
#include "util/logging.hpp"
#include "util/trace.hpp"

namespace tlp::sim {

namespace {

/** Hard cap against runaway simulations (a generous multiple of any
 *  legitimate workload in this repository). */
constexpr std::uint64_t kMaxEvents = 4'000'000'000ull;

/** The inline L1-hit fast path is on unless TLPPM_SIM_FASTPATH=0 (the
 *  differential test flips this per run; results are identical either
 *  way — see DESIGN.md "Simulator kernel"). */
bool
fastPathEnabled()
{
    const char* v = std::getenv("TLPPM_SIM_FASTPATH");
    return !(v && v[0] == '0' && v[1] == '\0');
}

} // namespace

/** Storage that survives across runs: the event heap keeps its capacity
 *  (pre-reserved to the previous run's high-water mark) and the memory
 *  system keeps its cache-line arrays, reset to cold state per run. */
struct Cmp::Arena
{
    EventQueue queue;
    std::unique_ptr<MemorySystem> memsys;
};

Cmp::Cmp(CmpConfig config) : config_(config)
{
    if (config_.n_cores < 1)
        util::fatal("Cmp: need at least one core");
    if (config_.f_nominal_hz <= 0.0)
        util::fatal("Cmp: bad nominal frequency");
}

Cmp::~Cmp() = default;
Cmp::Cmp(Cmp&&) noexcept = default;
Cmp& Cmp::operator=(Cmp&&) noexcept = default;

Cmp::Cmp(const Cmp& other) : config_(other.config_) {}

Cmp&
Cmp::operator=(const Cmp& other)
{
    if (this != &other) {
        config_ = other.config_;
        arena_.reset();
    }
    return *this;
}

RunResult
Cmp::run(const Program& program, double freq_hz) const
{
    const int n_threads = program.nThreads();
    if (n_threads < 1 || n_threads > config_.n_cores) {
        util::fatal(util::strcatMsg("Cmp::run: program has ", n_threads,
                                    " threads for ", config_.n_cores,
                                    " cores"));
    }
    if (freq_hz <= 0.0)
        util::fatal("Cmp::run: bad frequency");

    TLPPM_TRACE_SCOPE("sim", "cmp.run n=", n_threads, " f=",
                      freq_hz * 1e-9, "GHz");

    RunResult result;
    result.freq_hz = freq_hz;
    result.n_threads = n_threads;

    if (!arena_)
        arena_ = std::make_unique<Arena>();
    EventQueue& queue = arena_->queue;
    queue.reset();
    if (!arena_->memsys) {
        arena_->memsys = std::make_unique<MemorySystem>(
            config_, n_threads, freq_hz, queue, result.stats);
    } else {
        arena_->memsys->reset(n_threads, freq_hz, result.stats);
    }
    MemorySystem& memsys = *arena_->memsys;
    BarrierManager barriers(config_, n_threads, queue, result.stats);
    LockManager locks(config_, queue, result.stats);

    const bool fast_path = fastPathEnabled();
    int remaining = n_threads;
    std::vector<Core> cores;
    cores.reserve(n_threads);
    for (int i = 0; i < n_threads; ++i) {
        cores.emplace_back(i, config_, program.threads[i], queue, memsys,
                           result.stats, fast_path,
                           [&remaining] { --remaining; });
    }
    for (Core& core : cores)
        core.start();

    // The dispatcher: routes every typed event to its actor. Completion
    // events re-enter the issuing core's execute loop; issue events enter
    // the memory system or a sync manager; bus machinery events stay
    // inside the memory system.
    const auto dispatch = [&](const Event& event) {
        switch (event.kind) {
          case EventKind::CoreResume:
          case EventKind::MemDone:
          case EventKind::StoreAccept:
          case EventKind::BarrierRelease:
          case EventKind::LockGrant:
            cores[event.arg].resume();
            break;
          case EventKind::IssueLoad:
            memsys.load(static_cast<int>(event.arg), event.addr);
            break;
          case EventKind::IssueStore:
            memsys.store(static_cast<int>(event.arg), event.addr);
            break;
          case EventKind::IssueBarrier:
            barriers.arrive(static_cast<int>(event.arg));
            break;
          case EventKind::IssueLock:
            locks.acquire(event.addr, static_cast<int>(event.arg));
            break;
          case EventKind::IssueUnlock:
            locks.release(event.addr, static_cast<int>(event.arg));
            cores[event.arg].resume();
            break;
          case EventKind::CoreFinish:
            cores[event.arg].finish();
            break;
          case EventKind::BusGrant:
            memsys.onBusGrant(static_cast<int>(event.arg), event.addr,
                              event.aux);
            break;
          case EventKind::StoreDrained:
            memsys.onStoreDrained(static_cast<int>(event.arg));
            break;
          case EventKind::Callback:
            break; // handled inside EventQueue::run, never reaches here
        }
    };
    const std::uint64_t executed = queue.run(dispatch, kMaxEvents);
    if (executed >= kMaxEvents)
        util::fatal("Cmp::run: event budget exceeded (livelock?)");
    if (remaining != 0) {
        util::fatal(util::strcatMsg("Cmp::run: deadlock, ", remaining,
                                    " thread(s) never finished (barrier or "
                                    "lock mismatch in the program)"));
    }

    for (const Core& core : cores)
        result.cycles = std::max(result.cycles, core.finishCycle());
    result.seconds = static_cast<double>(result.cycles) / freq_hz;
    result.instructions = program.instructionCount();
    result.coherent = memsys.checkCoherence();

    // Derived counters the power model consumes: instruction-fetch
    // activity (one I-cache read per fetch group of four).
    for (int i = 0; i < n_threads; ++i) {
        const std::string prefix = "core" + std::to_string(i) + ".";
        const std::uint64_t insts =
            result.stats.counterValue(prefix + "insts");
        result.stats.counter(prefix + "l1i.reads").increment(insts / 4);
    }
    // Kernel telemetry (fast-path dependent, so deliberately outside the
    // StatRegistry — see the RunResult field comments).
    result.events = executed;
    result.queue_high_water = queue.highWater();
    result.core_cycles.reserve(cores.size());
    for (const Core& core : cores) {
        result.core_cycles.push_back({core.busyCycles(),
                                      core.stallMemCycles(),
                                      core.stallSyncCycles()});
    }
    return result;
}

} // namespace tlp::sim
