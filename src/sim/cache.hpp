/**
 * @file
 * Set-associative cache arrays with per-line MESI state and LRU
 * replacement.
 *
 * CacheArray is a pure state container: the timing and the coherence
 * protocol live in MemorySystem, which manipulates the arrays of all L1s
 * plus the shared L2 atomically at bus-grant time. This mirrors the
 * paper's 16-way CMP: private 64 KB 2-way L1s with 64 B lines, a shared
 * inclusive 4 MB 8-way L2 with 128 B lines, MESI over a snooping bus.
 *
 * Lookups are on the simulator's hottest path (every load and store of
 * every core probes an L1), so the array is laid out for cheap probes:
 * set selection is a precomputed shift/mask when the set count is a power
 * of two (the paper geometry always is; a divide/modulo fallback keeps
 * arbitrary set counts correct), and invalid lines carry a sentinel tag
 * that can never equal a line-aligned address, so the way scan compares
 * tags only — no per-way validity branch.
 */

#ifndef TLP_SIM_CACHE_HPP
#define TLP_SIM_CACHE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/program.hpp"

namespace tlp::sim {

/** MESI coherence states. */
enum class Mesi : std::uint8_t { Invalid, Shared, Exclusive, Modified };

/** Printable name of a MESI state. */
const char* mesiName(Mesi state);

/** Result of inserting a line: the evicted victim, if any. */
struct Victim
{
    Addr line_addr = 0;
    Mesi state = Mesi::Invalid;
};

/** A set-associative array of MESI-tagged lines. */
class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity, @param line_bytes line size (power
     * of two, >= 2), @param assoc ways. size must be divisible by
     * line_bytes * assoc.
     */
    CacheArray(std::uint64_t size_bytes, std::uint32_t line_bytes,
               std::uint32_t assoc);

    /** Line-aligned address of @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~line_mask_; }

    /** Current state of the line holding @p addr (Invalid if absent). */
    Mesi state(Addr addr) const;

    /** True when the line is present in any valid state. */
    bool contains(Addr addr) const { return find(addr) != nullptr; }

    /**
     * Fused read probe: when the line is present, make it most-recently
     * used and return true. Exactly equivalent to
     * `contains(addr) && (touch(addr), true)` with a single way scan.
     */
    bool
    readHit(Addr addr)
    {
        Line* line = find(addr);
        if (!line)
            return false;
        line->lru = ++lru_clock_;
        return true;
    }

    /**
     * Fused write probe: when the line is held in Modified or Exclusive
     * (writable without a bus transaction), dirty it, make it
     * most-recently used, and return true. A Shared hit or a miss returns
     * false with the array untouched — the caller must take the bus.
     */
    bool
    writeHitUpgrade(Addr addr)
    {
        Line* line = find(addr);
        if (!line || (line->state != Mesi::Modified &&
                      line->state != Mesi::Exclusive))
            return false;
        line->state = Mesi::Modified;
        line->lru = ++lru_clock_;
        return true;
    }

    /**
     * Insert (or re-state) the line for @p addr with @p state and make it
     * most-recently used. Returns the evicted victim when a valid line had
     * to be displaced.
     */
    std::optional<Victim> insert(Addr addr, Mesi state);

    /** Change the state of a present line; fatal if absent. */
    void setState(Addr addr, Mesi state);

    /** Invalidate the line if present; returns its previous state. */
    Mesi invalidate(Addr addr);

    /** Touch a present line for LRU purposes; fatal if absent. */
    void touch(Addr addr);

    std::uint32_t lineBytes() const { return line_bytes_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint64_t sets() const { return n_sets_; }

    /** Number of currently valid lines (for tests/inspection). */
    std::uint64_t validLines() const;

    /** Visit every valid line as (line_addr, state). */
    template <typename Visitor>
    void
    forEachValidLine(Visitor&& visit) const
    {
        for (const Line& line : lines_) {
            if (line.state != Mesi::Invalid)
                visit(line.tag, line.state);
        }
    }

    /**
     * Return the array to its cold state (every line Invalid, LRU clock
     * zero) without releasing the line storage, so one allocation serves
     * many simulation runs.
     */
    void reset();

  private:
    /** Tag of an invalid line. All-ones is never line-aligned (line size
     *  >= 2), so a tag-only way scan can never hit an invalid way. */
    static constexpr Addr kInvalidTag = ~Addr{0};

    struct Line
    {
        Addr tag = kInvalidTag;
        std::uint64_t lru = 0;
        Mesi state = Mesi::Invalid;
    };

    std::uint64_t
    setIndex(Addr addr) const
    {
        const Addr line = addr >> line_shift_;
        return sets_pow2_ ? (line & set_mask_) : (line % n_sets_);
    }

    /** Tag-only scan of the addressed set; null on miss. Invalid ways
     *  hold kInvalidTag and can never match a line-aligned tag. */
    Line*
    find(Addr addr)
    {
        const Addr want = lineAddr(addr);
        Line* set = &lines_[setIndex(addr) * assoc_];
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (set[w].tag == want)
                return &set[w];
        }
        return nullptr;
    }

    const Line*
    find(Addr addr) const
    {
        return const_cast<CacheArray*>(this)->find(addr);
    }

    std::uint32_t line_bytes_;
    std::uint32_t assoc_;
    std::uint64_t n_sets_;
    Addr line_mask_;
    std::uint32_t line_shift_;  ///< log2(line_bytes)
    bool sets_pow2_;            ///< shift/mask indexing applies
    std::uint64_t set_mask_;    ///< n_sets - 1 when sets_pow2_
    std::uint64_t lru_clock_ = 0;
    std::vector<Line> lines_; // n_sets * assoc, row-major by set
};

} // namespace tlp::sim

#endif // TLP_SIM_CACHE_HPP
