/**
 * @file
 * Set-associative cache arrays with per-line MESI state and LRU
 * replacement.
 *
 * CacheArray is a pure state container: the timing and the coherence
 * protocol live in MemorySystem, which manipulates the arrays of all L1s
 * plus the shared L2 atomically at bus-grant time. This mirrors the
 * paper's 16-way CMP: private 64 KB 2-way L1s with 64 B lines, a shared
 * inclusive 4 MB 8-way L2 with 128 B lines, MESI over a snooping bus.
 */

#ifndef TLP_SIM_CACHE_HPP
#define TLP_SIM_CACHE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/program.hpp"

namespace tlp::sim {

/** MESI coherence states. */
enum class Mesi : std::uint8_t { Invalid, Shared, Exclusive, Modified };

/** Printable name of a MESI state. */
const char* mesiName(Mesi state);

/** Result of inserting a line: the evicted victim, if any. */
struct Victim
{
    Addr line_addr = 0;
    Mesi state = Mesi::Invalid;
};

/** A set-associative array of MESI-tagged lines. */
class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity, @param line_bytes line size (power
     * of two), @param assoc ways. size must be divisible by
     * line_bytes * assoc.
     */
    CacheArray(std::uint64_t size_bytes, std::uint32_t line_bytes,
               std::uint32_t assoc);

    /** Line-aligned address of @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~line_mask_; }

    /** Current state of the line holding @p addr (Invalid if absent). */
    Mesi state(Addr addr) const;

    /** True when the line is present in any valid state. */
    bool contains(Addr addr) const { return state(addr) != Mesi::Invalid; }

    /**
     * Insert (or re-state) the line for @p addr with @p state and make it
     * most-recently used. Returns the evicted victim when a valid line had
     * to be displaced.
     */
    std::optional<Victim> insert(Addr addr, Mesi state);

    /** Change the state of a present line; fatal if absent. */
    void setState(Addr addr, Mesi state);

    /** Invalidate the line if present; returns its previous state. */
    Mesi invalidate(Addr addr);

    /** Touch a present line for LRU purposes; fatal if absent. */
    void touch(Addr addr);

    std::uint32_t lineBytes() const { return line_bytes_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint64_t sets() const { return n_sets_; }

    /** Number of currently valid lines (for tests/inspection). */
    std::uint64_t validLines() const;

    /** Visit every valid line as (line_addr, state). */
    template <typename Visitor>
    void
    forEachValidLine(Visitor&& visit) const
    {
        for (const Line& line : lines_) {
            if (line.state != Mesi::Invalid)
                visit(line.tag, line.state);
        }
    }

    /**
     * Return the array to its cold state (every line Invalid, LRU clock
     * zero) without releasing the line storage, so one allocation serves
     * many simulation runs.
     */
    void reset();

  private:
    struct Line
    {
        Addr tag = 0;
        Mesi state = Mesi::Invalid;
        std::uint64_t lru = 0;
    };

    std::uint64_t setIndex(Addr addr) const;
    Line* find(Addr addr);
    const Line* find(Addr addr) const;

    std::uint32_t line_bytes_;
    std::uint32_t assoc_;
    std::uint64_t n_sets_;
    Addr line_mask_;
    std::uint64_t lru_clock_ = 0;
    std::vector<Line> lines_; // n_sets * assoc, row-major by set
};

} // namespace tlp::sim

#endif // TLP_SIM_CACHE_HPP
