/**
 * @file
 * Synchronization primitives of the simulated CMP: centralized barriers
 * and queued locks.
 *
 * Costs are modelled at the level the evaluation needs: an uncontended
 * lock acquire costs one atomic read-modify-write through the L2; a
 * contended hand-off costs a cache-to-cache transfer; a barrier release
 * fans out invalidations on the bus. Waiting cores are descheduled — the
 * manager records only the waiting core id and emits a typed event
 * (EventKind::BarrierRelease / EventKind::LockGrant for that core) when
 * the primitive grants; the event dispatcher resumes the core, and the
 * wait shows up as idle (non-issuing) cycles in the power model's
 * clock-gating term.
 */

#ifndef TLP_SIM_SYNC_HPP
#define TLP_SIM_SYNC_HPP

#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "util/stats.hpp"

namespace tlp::sim {

/** Centralized sense-reversing barrier spanning all running threads. */
class BarrierManager
{
  public:
    BarrierManager(const CmpConfig& config, int n_threads,
                   EventQueue& queue, util::StatRegistry& stats);

    /** Thread @p core arrives; EventKind::BarrierRelease for each waiter
     *  (in arrival order) fires once all threads have arrived. */
    void arrive(int core);

    /** Number of completed barrier episodes. */
    std::uint64_t episodes() const { return episodes_; }

  private:
    CmpConfig config_;
    int n_threads_;
    EventQueue* queue_;
    util::StatRegistry* stats_;
    std::vector<std::uint32_t> waiting_; ///< arrived cores, in order
    std::uint64_t episodes_ = 0;
};

/** FIFO-queued locks addressed by id. */
class LockManager
{
  public:
    LockManager(const CmpConfig& config, EventQueue& queue,
                util::StatRegistry& stats);

    /** Thread @p core requests lock @p id; EventKind::LockGrant for
     *  @p core fires at acquire. */
    void acquire(std::uint64_t id, int core);

    /** Thread @p core releases lock @p id (must hold it). */
    void release(std::uint64_t id, int core);

    /** True when @p id is currently held. */
    bool held(std::uint64_t id) const;

  private:
    struct LockState
    {
        bool busy = false;
        int owner = -1;
        std::deque<int> waiters;
    };

    CmpConfig config_;
    EventQueue* queue_;
    util::StatRegistry* stats_;
    std::unordered_map<std::uint64_t, LockState> locks_;
};

} // namespace tlp::sim

#endif // TLP_SIM_SYNC_HPP
