/**
 * @file
 * Synchronization primitives of the simulated CMP: centralized barriers
 * and queued locks.
 *
 * Costs are modelled at the level the evaluation needs: an uncontended
 * lock acquire costs one atomic read-modify-write through the L2; a
 * contended hand-off costs a cache-to-cache transfer; a barrier release
 * fans out invalidations on the bus. Waiting cores are descheduled (their
 * continuation runs when the primitive grants), and the wait shows up as
 * idle (non-issuing) cycles in the power model's clock-gating term.
 */

#ifndef TLP_SIM_SYNC_HPP
#define TLP_SIM_SYNC_HPP

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "util/stats.hpp"

namespace tlp::sim {

/** Completion callback of a synchronization request. */
using SyncCallback = std::function<void()>;

/** Centralized sense-reversing barrier spanning all running threads. */
class BarrierManager
{
  public:
    BarrierManager(const CmpConfig& config, int n_threads,
                   EventQueue& queue, util::StatRegistry& stats);

    /** Thread @p core arrives; @p resume runs when all threads arrived. */
    void arrive(int core, SyncCallback resume);

    /** Number of completed barrier episodes. */
    std::uint64_t episodes() const { return episodes_; }

  private:
    CmpConfig config_;
    int n_threads_;
    EventQueue* queue_;
    util::StatRegistry* stats_;
    std::vector<SyncCallback> waiting_;
    std::uint64_t episodes_ = 0;
};

/** FIFO-queued locks addressed by id. */
class LockManager
{
  public:
    LockManager(const CmpConfig& config, EventQueue& queue,
                util::StatRegistry& stats);

    /** Thread @p core requests lock @p id; @p granted runs at acquire. */
    void acquire(std::uint64_t id, int core, SyncCallback granted);

    /** Thread @p core releases lock @p id (must hold it). */
    void release(std::uint64_t id, int core);

    /** True when @p id is currently held. */
    bool held(std::uint64_t id) const;

  private:
    struct LockState
    {
        bool busy = false;
        int owner = -1;
        std::deque<std::pair<int, SyncCallback>> waiters;
    };

    CmpConfig config_;
    EventQueue* queue_;
    util::StatRegistry* stats_;
    std::unordered_map<std::uint64_t, LockState> locks_;
};

} // namespace tlp::sim

#endif // TLP_SIM_SYNC_HPP
