/**
 * @file
 * Abstract per-thread instruction streams consumed by the core model.
 *
 * Workload generators (tlp_workloads) compile each SPLASH-2-like kernel
 * into one ThreadProgram per thread: runs of integer/floating-point
 * computation, loads and stores with concrete byte addresses (so the cache
 * hierarchy and the MESI protocol see real locality and sharing), and
 * synchronization markers (barriers and locks).
 */

#ifndef TLP_SIM_PROGRAM_HPP
#define TLP_SIM_PROGRAM_HPP

#include <cstdint>
#include <vector>

namespace tlp::sim {

/** Byte address in the shared simulated address space. */
using Addr = std::uint64_t;

/** Kinds of abstract operations. */
enum class OpType : std::uint8_t {
    IntOps,  ///< `count` integer ALU operations
    FpOps,   ///< `count` floating-point operations
    Load,    ///< one load from `addr`
    Store,   ///< one store to `addr`
    Barrier, ///< global barrier number `addr`-th in program order
    Lock,    ///< acquire lock id `addr`
    Unlock,  ///< release lock id `addr`
    End,     ///< thread finished
};

/** One abstract operation. */
struct Op
{
    OpType type = OpType::End;
    std::uint32_t count = 0; ///< operation count for IntOps/FpOps
    Addr addr = 0;           ///< address (memory ops) or id (sync ops)
};

/** Immutable operation stream of one thread. */
class ThreadProgram
{
  public:
    ThreadProgram() = default;

    /** Append an op; End is appended automatically by finish(). */
    void push(Op op) { ops_.push_back(op); }

    /** Convenience emitters used by the workload generators. */
    void intOps(std::uint32_t count);
    void fpOps(std::uint32_t count);
    void load(Addr addr) { push({OpType::Load, 0, addr}); }
    void store(Addr addr) { push({OpType::Store, 0, addr}); }
    void barrier(std::uint64_t id) { push({OpType::Barrier, 0, id}); }
    void lock(std::uint64_t id) { push({OpType::Lock, 0, id}); }
    void unlock(std::uint64_t id) { push({OpType::Unlock, 0, id}); }

    /** Seal the stream with an End op (idempotent). */
    void finish();

    const std::vector<Op>& ops() const { return ops_; }
    bool finished() const;

    /** Dynamic instruction count: ALU op counts plus one per memory op
     *  (sync markers are free). */
    std::uint64_t instructionCount() const;

  private:
    std::vector<Op> ops_;
};

/** A parallel program: one stream per thread plus sync-object counts. */
struct Program
{
    std::vector<ThreadProgram> threads;
    std::uint64_t n_barriers = 0; ///< number of distinct barrier episodes
    std::uint64_t n_locks = 0;    ///< number of distinct lock ids

    int nThreads() const { return static_cast<int>(threads.size()); }

    /** Total dynamic instructions across threads. */
    std::uint64_t instructionCount() const;
};

} // namespace tlp::sim

#endif // TLP_SIM_PROGRAM_HPP
