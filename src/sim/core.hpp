/**
 * @file
 * Core — the EV6-like timing model that executes one thread's abstract
 * operation stream.
 *
 * The model is an in-order issue abstraction of the 4-wide 21264: runs of
 * integer/FP computation retire at a sustained IPC, loads block on the
 * cache hierarchy, stores retire through the store buffer, and
 * synchronization ops hand control to the barrier/lock managers. This is
 * deliberately simpler than a full out-of-order pipeline: the paper's
 * evaluation consumes relative compute-vs-memory cycle accounting under
 * DVFS, not microarchitectural detail (see DESIGN.md substitutions).
 *
 * Blocking ops leave resume() by posting a typed event (IssueLoad,
 * IssueStore, IssueBarrier, IssueLock, IssueUnlock, CoreFinish) at
 * now + accumulated delay; the run-loop dispatcher (Cmp) routes the event
 * to the memory system or a sync manager, whose completion event
 * (MemDone, StoreAccept, BarrierRelease, LockGrant) re-enters resume().
 *
 * Fast path: when enabled, an L1 load/store hit (or store-to-load
 * forward) whose whole issue-to-completion window precedes every pending
 * event is resolved inline as pure delay accumulation — no event-queue
 * round trip. DESIGN.md ("Simulator kernel") gives the equivalence
 * argument for why this is invisible to every architectural counter.
 */

#ifndef TLP_SIM_CORE_HPP
#define TLP_SIM_CORE_HPP

#include <functional>

#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/memory_system.hpp"
#include "sim/program.hpp"
#include "util/stats.hpp"

namespace tlp::sim {

/** One core executing one thread program. */
class Core
{
  public:
    /**
     * @param id       core / thread index
     * @param config   machine configuration
     * @param program  the thread's operation stream (must outlive Core)
     * @param queue    global event queue
     * @param memsys   cache hierarchy
     * @param stats    statistics registry
     * @param fast_path resolve safe L1 hits inline (TLPPM_SIM_FASTPATH)
     * @param on_finish invoked once when the thread retires its End op
     */
    Core(int id, const CmpConfig& config, const ThreadProgram& program,
         EventQueue& queue, MemorySystem& memsys,
         util::StatRegistry& stats, bool fast_path,
         std::function<void()> on_finish);

    /** Schedule the first fetch at cycle 0 (call once before running). */
    void start();

    /**
     * Execute ops until the next blocking point. Invoked by the event
     * dispatcher whenever a completion event (CoreResume, MemDone,
     * StoreAccept, BarrierRelease, LockGrant) targets this core.
     */
    void resume();

    /** Retire the thread (CoreFinish event). */
    void finish();

    bool finished() const { return finished_; }

    /** Cycle at which the thread retired (valid once finished). */
    Cycle finishCycle() const { return finish_cycle_; }

    /** Compute cycles retired by this core (kernel telemetry). */
    std::uint64_t busyCycles() const { return busy_cycles_; }

    /** Cycles blocked on the memory hierarchy: issue-to-resume windows
     *  of loads and stores, plus inline-resolved L1 hit latencies. */
    std::uint64_t stallMemCycles() const { return stall_mem_cycles_; }

    /** Cycles blocked on synchronization (barriers, locks). */
    std::uint64_t stallSyncCycles() const { return stall_sync_cycles_; }

  private:
    /** Retire bookkeeping for @p insts instructions. */
    void
    countInstructions(std::uint64_t insts)
    {
        insts_->increment(insts);
    }

    int id_;
    std::uint32_t uid_; ///< id_ as the events' arg payload
    CmpConfig config_;
    const ThreadProgram* program_;
    EventQueue* queue_;
    MemorySystem* memsys_;
    util::StatRegistry* stats_;
    bool fast_path_;
    std::function<void()> on_finish_;

    // Pre-resolved counters: resume() touches them once per op, so the
    // per-access name concatenation would dominate the execute loop.
    util::Counter* insts_;
    util::Counter* int_ops_;
    util::Counter* fp_ops_;
    util::Counter* active_cycles_;

    std::size_t pc_ = 0;       ///< index into the op stream
    bool finished_ = false;
    Cycle finish_cycle_ = 0;
    double compute_carry_ = 0.0; ///< fractional-cycle accumulator
    std::uint32_t inline_ops_ = 0; ///< fast-path watchdog poll counter

    /** Cycle-breakdown telemetry (see the accessors above). A blocking
     *  issue records its issue-time cycle and kind; the next resume()
     *  charges the elapsed window to the matching stall bucket. */
    enum class BlockKind : std::uint8_t { None, Mem, Sync };
    std::uint64_t busy_cycles_ = 0;
    std::uint64_t stall_mem_cycles_ = 0;
    std::uint64_t stall_sync_cycles_ = 0;
    Cycle blocked_at_ = 0;
    BlockKind blocked_ = BlockKind::None;
};

} // namespace tlp::sim

#endif // TLP_SIM_CORE_HPP
