/**
 * @file
 * Core — the EV6-like timing model that executes one thread's abstract
 * operation stream.
 *
 * The model is an in-order issue abstraction of the 4-wide 21264: runs of
 * integer/FP computation retire at a sustained IPC, loads block on the
 * cache hierarchy, stores retire through the store buffer, and
 * synchronization ops hand control to the barrier/lock managers. This is
 * deliberately simpler than a full out-of-order pipeline: the paper's
 * evaluation consumes relative compute-vs-memory cycle accounting under
 * DVFS, not microarchitectural detail (see DESIGN.md substitutions).
 */

#ifndef TLP_SIM_CORE_HPP
#define TLP_SIM_CORE_HPP

#include <functional>

#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/memory_system.hpp"
#include "sim/program.hpp"
#include "sim/sync.hpp"
#include "util/stats.hpp"

namespace tlp::sim {

/** One core executing one thread program. */
class Core
{
  public:
    /**
     * @param id       core / thread index
     * @param config   machine configuration
     * @param program  the thread's operation stream (must outlive Core)
     * @param queue    global event queue
     * @param memsys   cache hierarchy
     * @param barriers barrier manager
     * @param locks    lock manager
     * @param stats    statistics registry
     * @param on_finish invoked once when the thread retires its End op
     */
    Core(int id, const CmpConfig& config, const ThreadProgram& program,
         EventQueue& queue, MemorySystem& memsys, BarrierManager& barriers,
         LockManager& locks, util::StatRegistry& stats,
         std::function<void()> on_finish);

    /** Schedule the first fetch at cycle 0 (call once before running). */
    void start();

    bool finished() const { return finished_; }

    /** Cycle at which the thread retired (valid once finished). */
    Cycle finishCycle() const { return finish_cycle_; }

  private:
    /** Execute ops until the next blocking point. */
    void resume();

    /** Retire bookkeeping for @p insts instructions. */
    void
    countInstructions(std::uint64_t insts)
    {
        insts_->increment(insts);
    }

    int id_;
    CmpConfig config_;
    const ThreadProgram* program_;
    EventQueue* queue_;
    MemorySystem* memsys_;
    BarrierManager* barriers_;
    LockManager* locks_;
    util::StatRegistry* stats_;
    std::function<void()> on_finish_;

    // Pre-resolved counters: resume() touches them once per op, so the
    // per-access name concatenation would dominate the execute loop.
    util::Counter* insts_;
    util::Counter* int_ops_;
    util::Counter* fp_ops_;
    util::Counter* active_cycles_;

    std::size_t pc_ = 0;       ///< index into the op stream
    bool finished_ = false;
    Cycle finish_cycle_ = 0;
    double compute_carry_ = 0.0; ///< fractional-cycle accumulator
};

} // namespace tlp::sim

#endif // TLP_SIM_CORE_HPP
