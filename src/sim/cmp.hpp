/**
 * @file
 * Cmp — the assembled 16-way chip multiprocessor simulator (§3 of the
 * paper): one Core per thread, private L1s, MESI snooping bus, shared L2,
 * off-chip memory, barriers, and locks, all driven by one event queue.
 *
 * A Cmp is semantically stateless between runs: every run() starts from a
 * cold hierarchy (invalid caches, empty queue), executes the program to
 * completion at the given chip frequency, and returns the cycle count plus
 * the full activity-counter registry that the power model prices. The
 * large per-run allocations (cache-line arrays, the event heap) live in a
 * reusable arena, so back-to-back runs — the figure sweeps simulate
 * hundreds — do not rebuild them; runs remain bit-for-bit identical to a
 * freshly constructed Cmp. Because of the arena, concurrent run() calls on
 * the SAME Cmp are not allowed; give each thread its own Cmp (the sweep
 * runner keeps one simulator per worker).
 */

#ifndef TLP_SIM_CMP_HPP
#define TLP_SIM_CMP_HPP

#include <memory>
#include <vector>

#include "sim/config.hpp"
#include "sim/program.hpp"
#include "util/stats.hpp"

namespace tlp::sim {

/**
 * Where one core's cycles went, from run start to its finish: cycles
 * retired computing (busy), cycles blocked on the memory hierarchy
 * (loads, stores, bus and L2/memory queues), and cycles blocked on
 * synchronization (barriers and locks). Kernel telemetry like
 * RunResult::events — the observability layer reports it, the power
 * model never reads it.
 */
struct CoreCycleBreakdown
{
    std::uint64_t busy = 0;       ///< compute cycles retired
    std::uint64_t stall_mem = 0;  ///< blocked on loads/stores
    std::uint64_t stall_sync = 0; ///< blocked on barriers/locks
};

/** Everything a finished simulation reports. */
struct RunResult
{
    std::uint64_t cycles = 0;       ///< completion time in core cycles
    double freq_hz = 0.0;           ///< chip frequency of the run
    double seconds = 0.0;           ///< cycles / freq
    std::uint64_t instructions = 0; ///< dynamic instructions retired
    int n_threads = 0;              ///< cores that ran threads
    bool coherent = false;          ///< MESI invariant held at the end
    /** Events the kernel executed for this run. Kernel telemetry, not an
     *  architectural counter: the L1-hit fast path legitimately shrinks
     *  it (stats stays byte-identical), which is why it lives here and
     *  not in the StatRegistry. */
    std::uint64_t events = 0;
    /** Peak pending-event count (heap-reservation telemetry). */
    std::uint64_t queue_high_water = 0;
    /** Per-core busy/stall/sync cycle accounting, one entry per active
     *  core. Same telemetry status as `events`: fast-path-invariant in
     *  total, deliberately outside the StatRegistry so it can never
     *  perturb the power model's counter sums. */
    std::vector<CoreCycleBreakdown> core_cycles;
    util::StatRegistry stats;       ///< per-unit activity counters

    /** Aggregate instructions per cycle. */
    double ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }
};

/** The chip multiprocessor simulator. */
class Cmp
{
  public:
    explicit Cmp(CmpConfig config);
    ~Cmp();

    /** Copies share the configuration but never the run arena. */
    Cmp(const Cmp& other);
    Cmp& operator=(const Cmp& other);
    Cmp(Cmp&&) noexcept;
    Cmp& operator=(Cmp&&) noexcept;

    /**
     * Simulate @p program to completion at chip frequency @p freq_hz.
     *
     * The program's thread count selects how many cores participate;
     * unused cores are shut off. Throws FatalError on deadlock (event
     * queue drained with unfinished threads) or when the event budget is
     * exceeded. Not safe to call concurrently on one Cmp (see the file
     * comment); distinct Cmp objects are independent.
     */
    RunResult run(const Program& program, double freq_hz) const;

    const CmpConfig& config() const { return config_; }

  private:
    struct Arena; ///< reusable event heap + cache hierarchy storage

    CmpConfig config_;
    mutable std::unique_ptr<Arena> arena_;
};

} // namespace tlp::sim

#endif // TLP_SIM_CMP_HPP
