#include "sim/memory_system.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace tlp::sim {

MemorySystem::MemorySystem(const CmpConfig& config, int n_active,
                           double freq_hz, EventQueue& queue,
                           util::StatRegistry& stats)
    : config_(config), n_active_(n_active),
      memory_cycles_(config.memoryCycles(freq_hz)), queue_(&queue),
      stats_(&stats),
      l2_(config.l2_size_bytes, config.l2_line_bytes, config.l2_assoc)
{
    if (n_active < 1 || n_active > config.n_cores)
        util::fatal("MemorySystem: bad active core count");
    if (config.store_buffer_entries == 0)
        util::fatal("MemorySystem: store buffer needs at least one slot");
    l1_.reserve(config.n_cores);
    for (int i = 0; i < config.n_cores; ++i) {
        l1_.emplace_back(config.l1_size_bytes, config.l1_line_bytes,
                         config.l1_assoc);
    }
    store_buffers_.resize(config.n_cores);
    for (StoreBuffer& buffer : store_buffers_) {
        buffer.ring.assign(config.store_buffer_entries, 0);
        buffer.line_refs.reserve(config.store_buffer_entries);
    }
    bindCounters(stats);
}

void
MemorySystem::reset(int n_active, double freq_hz,
                    util::StatRegistry& stats)
{
    if (n_active < 1 || n_active > config_.n_cores)
        util::fatal("MemorySystem: bad active core count");
    n_active_ = n_active;
    memory_cycles_ = config_.memoryCycles(freq_hz);
    stats_ = &stats;
    for (CacheArray& l1 : l1_)
        l1.reset();
    l2_.reset();
    for (StoreBuffer& buffer : store_buffers_) {
        buffer.head = 0;
        buffer.count = 0;
        buffer.draining = false;
        buffer.stalled.clear();
        buffer.line_refs.clear();
    }
    bus_next_free_ = 0;
    bindCounters(stats);
}

void
MemorySystem::bindCounters(util::StatRegistry& stats)
{
    core_counters_.resize(static_cast<std::size_t>(n_active_));
    std::string name;
    for (int i = 0; i < n_active_; ++i) {
        const std::string prefix = "core" + std::to_string(i) + ".";
        const auto at = [&](const char* suffix) {
            name.assign(prefix);
            name.append(suffix);
            return &stats.counter(name);
        };
        CoreCounters& c = core_counters_[static_cast<std::size_t>(i)];
        c.loads = at("loads");
        c.stores = at("stores");
        c.l1d_reads = at("l1d.reads");
        c.l1d_writes = at("l1d.writes");
        c.l1d_misses = at("l1d.misses");
        c.l1d_fills = at("l1d.fills");
        c.l1d_writebacks = at("l1d.writebacks");
    }
    bus_transactions_ = &stats.counter("bus.transactions");
    bus_c2c_transfers_ = &stats.counter("bus.c2c_transfers");
    bus_upgrades_ = &stats.counter("bus.upgrades");
    l2_reads_ = &stats.counter("l2.reads");
    l2_writes_ = &stats.counter("l2.writes");
    l2_misses_ = &stats.counter("l2.misses");
    memory_reads_ = &stats.counter("memory.reads");
    memory_writes_ = &stats.counter("memory.writes");
}

Cycle
MemorySystem::reserveBus(std::uint32_t occupancy)
{
    const Cycle start = std::max(queue_->now(), bus_next_free_);
    bus_next_free_ = start + occupancy;
    bus_transactions_->increment();
    return start;
}

void
MemorySystem::bufferPush(int core, Addr addr)
{
    StoreBuffer& buffer = store_buffers_[static_cast<std::size_t>(core)];
    std::uint32_t pos = buffer.head + buffer.count;
    const auto cap = static_cast<std::uint32_t>(buffer.ring.size());
    if (pos >= cap)
        pos -= cap;
    buffer.ring[pos] = addr;
    ++buffer.count;

    const Addr line = l1_[static_cast<std::size_t>(core)].lineAddr(addr);
    for (auto& [l, n] : buffer.line_refs) {
        if (l == line) {
            ++n;
            return;
        }
    }
    buffer.line_refs.emplace_back(line, 1u);
}

Addr
MemorySystem::bufferPop(int core)
{
    StoreBuffer& buffer = store_buffers_[static_cast<std::size_t>(core)];
    const Addr addr = buffer.ring[buffer.head];
    ++buffer.head;
    if (buffer.head == buffer.ring.size())
        buffer.head = 0;
    --buffer.count;

    const Addr line = l1_[static_cast<std::size_t>(core)].lineAddr(addr);
    for (auto& ref : buffer.line_refs) {
        if (ref.first == line) {
            if (--ref.second == 0) {
                ref = buffer.line_refs.back();
                buffer.line_refs.pop_back();
            }
            break;
        }
    }
    return addr;
}

void
MemorySystem::load(int core, Addr addr)
{
    CoreCounters& ctrs = core_counters_[static_cast<std::size_t>(core)];
    ctrs.loads->increment();
    ctrs.l1d_reads->increment();

    CacheArray& l1 = l1_[static_cast<std::size_t>(core)];
    if (l1.readHit(addr)) {
        queue_->postIn(config_.l1_hit_cycles, EventKind::MemDone,
                       static_cast<std::uint32_t>(core));
        return;
    }

    // Store-to-load forwarding from the core's own store buffer.
    if (storeBufferCovers(core, l1.lineAddr(addr))) {
        queue_->postIn(config_.l1_hit_cycles, EventKind::MemDone,
                       static_cast<std::uint32_t>(core));
        return;
    }

    ctrs.l1d_misses->increment();
    issue(TxnKind::BusRd, core, addr, Notify::MemDone);
}

void
MemorySystem::store(int core, Addr addr)
{
    CoreCounters& ctrs = core_counters_[static_cast<std::size_t>(core)];
    ctrs.stores->increment();
    ctrs.l1d_writes->increment();

    if (l1_[static_cast<std::size_t>(core)].writeHitUpgrade(addr)) {
        queue_->postIn(1, EventKind::StoreAccept,
                       static_cast<std::uint32_t>(core));
        return;
    }

    ctrs.l1d_misses->increment();
    StoreBuffer& buffer = store_buffers_[static_cast<std::size_t>(core)];
    if (buffer.count < config_.store_buffer_entries) {
        bufferPush(core, addr);
        queue_->postIn(1, EventKind::StoreAccept,
                       static_cast<std::uint32_t>(core));
        drainStoreBuffer(core);
    } else {
        // Buffer full: the core stalls until a slot frees.
        buffer.stalled.push_back(addr);
    }
}

void
MemorySystem::drainStoreBuffer(int core)
{
    StoreBuffer& buffer = store_buffers_[static_cast<std::size_t>(core)];
    if (buffer.draining || buffer.count == 0)
        return;
    buffer.draining = true;
    issue(TxnKind::BusRdX, core, buffer.ring[buffer.head],
          Notify::StoreDrained);
}

void
MemorySystem::onStoreDrained(int core)
{
    StoreBuffer& buffer = store_buffers_[static_cast<std::size_t>(core)];
    bufferPop(core);
    buffer.draining = false;
    if (!buffer.stalled.empty() &&
        buffer.count < config_.store_buffer_entries) {
        const Addr addr = buffer.stalled.front();
        buffer.stalled.pop_front();
        bufferPush(core, addr);
        queue_->postIn(1, EventKind::StoreAccept,
                       static_cast<std::uint32_t>(core));
    }
    drainStoreBuffer(core);
}

void
MemorySystem::issue(TxnKind kind, int core, Addr addr, Notify notify)
{
    const std::uint32_t occupancy = kind == TxnKind::Writeback
        ? config_.bus_occupancy_ctrl
        : config_.bus_occupancy_data;
    const Cycle grant = reserveBus(occupancy);
    queue_->post(grant, EventKind::BusGrant,
                 static_cast<std::uint32_t>(core), addr,
                 packGrant(kind, notify));
}

void
MemorySystem::onBusGrant(int core, Addr addr, std::uint8_t aux)
{
    const auto kind = static_cast<TxnKind>(aux & 0x0Fu);
    const auto notify = static_cast<Notify>(aux >> 4);
    const std::uint32_t latency = applyAtGrant(kind, core, addr);
    switch (notify) {
      case Notify::None:
        break;
      case Notify::MemDone:
        queue_->postIn(latency, EventKind::MemDone,
                       static_cast<std::uint32_t>(core));
        break;
      case Notify::StoreDrained:
        queue_->postIn(latency, EventKind::StoreDrained,
                       static_cast<std::uint32_t>(core));
        break;
    }
}

std::uint32_t
MemorySystem::fetchThroughL2(int core, Addr addr)
{
    (void)core;
    if (l2_.readHit(addr)) {
        l2_reads_->increment();
        return config_.l2_rt_cycles;
    }

    l2_misses_->increment();
    memory_reads_->increment();
    const auto victim = l2_.insert(addr, Mesi::Exclusive);
    if (victim) {
        backInvalidate(victim->line_addr);
        if (victim->state == Mesi::Modified)
            memory_writes_->increment();
    }
    l2_reads_->increment();
    return config_.l2_rt_cycles + memory_cycles_;
}

void
MemorySystem::backInvalidate(Addr l2_line)
{
    // One L2 line covers l2_line_bytes / l1_line_bytes L1 lines.
    for (Addr a = l2_line; a < l2_line + config_.l2_line_bytes;
         a += config_.l1_line_bytes) {
        for (int o = 0; o < n_active_; ++o) {
            const Mesi prev = l1_[o].invalidate(a);
            if (prev == Mesi::Modified) {
                // The dirty L1 data bypasses the departing L2 line and is
                // flushed straight to memory.
                memory_writes_->increment();
            }
        }
    }
}

void
MemorySystem::l1Insert(int core, Addr addr, Mesi state)
{
    CoreCounters& ctrs = core_counters_[static_cast<std::size_t>(core)];
    ctrs.l1d_fills->increment();
    const auto victim = l1_[core].insert(addr, state);
    if (victim && victim->state == Mesi::Modified) {
        ctrs.l1d_writebacks->increment();
        issue(TxnKind::Writeback, core, victim->line_addr, Notify::None);
    }
}

std::uint32_t
MemorySystem::applyAtGrant(TxnKind kind, int core, Addr addr)
{
    CacheArray& l1 = l1_[static_cast<std::size_t>(core)];

    switch (kind) {
      case TxnKind::BusRd: {
        if (l1.readHit(addr)) {
            // The line arrived while the request waited (e.g. a covering
            // store committed); treat as an immediate hit.
            return config_.l1_hit_cycles;
        }
        bool had_modified = false;
        bool had_copy = false;
        for (int o = 0; o < n_active_; ++o) {
            if (o == core)
                continue;
            const Mesi st = l1_[o].state(addr);
            if (st == Mesi::Invalid)
                continue;
            had_copy = true;
            if (st == Mesi::Modified) {
                had_modified = true;
                // Owner supplies data and writes back to the L2.
                if (l2_.contains(addr)) {
                    l2_.setState(addr, Mesi::Modified);
                    l2_writes_->increment();
                } else {
                    memory_writes_->increment();
                }
                bus_c2c_transfers_->increment();
            }
            l1_[o].setState(addr, Mesi::Shared);
        }
        if (had_modified) {
            l1Insert(core, addr, Mesi::Shared);
            return config_.c2c_rt_cycles;
        }
        if (had_copy) {
            // Clean copy elsewhere: the inclusive L2 supplies the data.
            const std::uint32_t latency = fetchThroughL2(core, addr);
            l1Insert(core, addr, Mesi::Shared);
            return latency;
        }
        const std::uint32_t latency = fetchThroughL2(core, addr);
        l1Insert(core, addr, Mesi::Exclusive);
        return latency;
      }

      case TxnKind::BusRdX: {
        const Mesi mine = l1.state(addr);
        if (mine == Mesi::Modified)
            return 1;
        if (mine == Mesi::Exclusive) {
            l1.setState(addr, Mesi::Modified);
            return 1;
        }

        bool had_modified = false;
        bool had_copy = false;
        for (int o = 0; o < n_active_; ++o) {
            if (o == core)
                continue;
            const Mesi st = l1_[o].invalidate(addr);
            if (st == Mesi::Invalid)
                continue;
            had_copy = true;
            if (st == Mesi::Modified) {
                had_modified = true;
                if (l2_.contains(addr)) {
                    l2_.setState(addr, Mesi::Modified);
                    l2_writes_->increment();
                } else {
                    memory_writes_->increment();
                }
                bus_c2c_transfers_->increment();
            }
        }

        if (mine == Mesi::Shared) {
            // BusUpgr: invalidation round, no data transfer.
            l1.setState(addr, Mesi::Modified);
            l1.touch(addr);
            bus_upgrades_->increment();
            return config_.upgrade_rt_cycles;
        }
        if (had_modified) {
            l1Insert(core, addr, Mesi::Modified);
            return config_.c2c_rt_cycles;
        }
        const std::uint32_t latency = fetchThroughL2(core, addr);
        (void)had_copy;
        l1Insert(core, addr, Mesi::Modified);
        return latency;
      }

      case TxnKind::BusUpgr:
      case TxnKind::Writeback: {
        if (l2_.contains(addr)) {
            l2_.setState(addr, Mesi::Modified);
            l2_writes_->increment();
        } else {
            memory_writes_->increment();
        }
        return 0;
      }
    }
    util::panic("MemorySystem: unknown transaction kind");
}

bool
MemorySystem::checkCoherence() const
{
    // Single-writer invariant: a line Modified or Exclusive in one L1 must
    // be Invalid in every other L1. Inclusion: every valid L1 line must be
    // covered by a valid L2 line.
    bool coherent = true;
    for (int a = 0; a < n_active_ && coherent; ++a) {
        l1_[a].forEachValidLine([&](Addr line, Mesi st) {
            if (!coherent)
                return;
            if (st == Mesi::Modified || st == Mesi::Exclusive) {
                for (int b = 0; b < n_active_; ++b) {
                    if (b != a && l1_[b].contains(line)) {
                        coherent = false;
                        return;
                    }
                }
            }
            if (!l2_.contains(line))
                coherent = false;
        });
    }
    return coherent;
}

} // namespace tlp::sim
