#include "sim/core.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace tlp::sim {

Core::Core(int id, const CmpConfig& config, const ThreadProgram& program,
           EventQueue& queue, MemorySystem& memsys,
           BarrierManager& barriers, LockManager& locks,
           util::StatRegistry& stats, std::function<void()> on_finish)
    : id_(id), config_(config), program_(&program), queue_(&queue),
      memsys_(&memsys), barriers_(&barriers), locks_(&locks),
      stats_(&stats), on_finish_(std::move(on_finish))
{
    if (!program.finished())
        util::fatal("Core: thread program lacks an End op");
    const std::string prefix = "core" + std::to_string(id_) + ".";
    insts_ = &stats.counter(prefix + "insts");
    int_ops_ = &stats.counter(prefix + "int_ops");
    fp_ops_ = &stats.counter(prefix + "fp_ops");
    active_cycles_ = &stats.counter(prefix + "active_cycles");
}

void
Core::start()
{
    queue_->schedule(queue_->now(), [this] { resume(); });
}

void
Core::resume()
{
    // Execute ops, accumulating compute cycles, until an op blocks (memory
    // or synchronization) or the stream ends. Blocking ops re-enter
    // resume() via their completion callbacks.
    Cycle delay = 0;
    while (true) {
        const Op& op = program_->ops()[pc_];
        switch (op.type) {
          case OpType::IntOps: {
            countInstructions(op.count);
            int_ops_->increment(op.count);
            compute_carry_ += op.count / config_.ipc_int;
            const double whole = std::floor(compute_carry_);
            compute_carry_ -= whole;
            delay += static_cast<Cycle>(whole);
            ++pc_;
            break;
          }
          case OpType::FpOps: {
            countInstructions(op.count);
            fp_ops_->increment(op.count);
            compute_carry_ += op.count / config_.ipc_fp;
            const double whole = std::floor(compute_carry_);
            compute_carry_ -= whole;
            delay += static_cast<Cycle>(whole);
            ++pc_;
            break;
          }
          case OpType::Load: {
            countInstructions(1);
            const Addr addr = op.addr;
            ++pc_;
            queue_->scheduleIn(delay, [this, addr] {
                memsys_->load(id_, addr, [this] { resume(); });
            });
            return;
          }
          case OpType::Store: {
            countInstructions(1);
            const Addr addr = op.addr;
            ++pc_;
            queue_->scheduleIn(delay, [this, addr] {
                memsys_->store(id_, addr, [this] { resume(); });
            });
            return;
          }
          case OpType::Barrier: {
            ++pc_;
            queue_->scheduleIn(delay, [this] {
                barriers_->arrive(id_, [this] { resume(); });
            });
            return;
          }
          case OpType::Lock: {
            const std::uint64_t lock_id = op.addr;
            ++pc_;
            queue_->scheduleIn(delay, [this, lock_id] {
                locks_->acquire(lock_id, id_, [this] { resume(); });
            });
            return;
          }
          case OpType::Unlock: {
            const std::uint64_t lock_id = op.addr;
            ++pc_;
            // The release must occur at the correct simulated time and in
            // deterministic order, so route it through the event queue.
            queue_->scheduleIn(delay, [this, lock_id] {
                locks_->release(lock_id, id_);
                resume();
            });
            return;
          }
          case OpType::End: {
            queue_->scheduleIn(delay, [this] {
                finished_ = true;
                finish_cycle_ = queue_->now();
                active_cycles_->increment(finish_cycle_);
                if (on_finish_)
                    on_finish_();
            });
            return;
          }
        }
    }
}

} // namespace tlp::sim
