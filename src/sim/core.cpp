#include "sim/core.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/watchdog.hpp"

namespace tlp::sim {

Core::Core(int id, const CmpConfig& config, const ThreadProgram& program,
           EventQueue& queue, MemorySystem& memsys,
           util::StatRegistry& stats, bool fast_path,
           std::function<void()> on_finish)
    : id_(id), uid_(static_cast<std::uint32_t>(id)), config_(config),
      program_(&program), queue_(&queue), memsys_(&memsys),
      stats_(&stats), fast_path_(fast_path),
      on_finish_(std::move(on_finish))
{
    if (!program.finished())
        util::fatal("Core: thread program lacks an End op");
    const std::string prefix = "core" + std::to_string(id_) + ".";
    insts_ = &stats.counter(prefix + "insts");
    int_ops_ = &stats.counter(prefix + "int_ops");
    fp_ops_ = &stats.counter(prefix + "fp_ops");
    active_cycles_ = &stats.counter(prefix + "active_cycles");
}

void
Core::start()
{
    queue_->post(queue_->now(), EventKind::CoreResume, uid_);
}

void
Core::resume()
{
    // Execute ops, accumulating compute cycles, until an op blocks (memory
    // or synchronization) or the stream ends. Blocking ops re-enter
    // resume() through their typed completion events.
    //
    // Telemetry: a blocking issue recorded its issue-time cycle in
    // blocked_at_; everything between then and this re-entry was spent
    // waiting on memory or synchronization.
    if (blocked_ != BlockKind::None) {
        const std::uint64_t waited = queue_->now() - blocked_at_;
        if (blocked_ == BlockKind::Mem)
            stall_mem_cycles_ += waited;
        else
            stall_sync_cycles_ += waited;
        blocked_ = BlockKind::None;
    }
    Cycle delay = 0;
    while (true) {
        const Op& op = program_->ops()[pc_];
        switch (op.type) {
          case OpType::IntOps: {
            countInstructions(op.count);
            int_ops_->increment(op.count);
            compute_carry_ += op.count / config_.ipc_int;
            const double whole = std::floor(compute_carry_);
            compute_carry_ -= whole;
            delay += static_cast<Cycle>(whole);
            busy_cycles_ += static_cast<std::uint64_t>(whole);
            ++pc_;
            break;
          }
          case OpType::FpOps: {
            countInstructions(op.count);
            fp_ops_->increment(op.count);
            compute_carry_ += op.count / config_.ipc_fp;
            const double whole = std::floor(compute_carry_);
            compute_carry_ -= whole;
            delay += static_cast<Cycle>(whole);
            busy_cycles_ += static_cast<std::uint64_t>(whole);
            ++pc_;
            break;
          }
          case OpType::Load: {
            countInstructions(1);
            const Addr addr = op.addr;
            ++pc_;
            if (fast_path_) {
                // Safe to resolve inline iff the whole issue-to-completion
                // window [at, at + hit] precedes every pending event:
                // nothing else can observe or perturb the access, and the
                // slow path would execute the identical state transitions
                // with no event interleaved.
                const Cycle at = queue_->now() + delay;
                if (queue_->nextEventTime() > at + config_.l1_hit_cycles &&
                    memsys_->inlineLoadHit(id_, addr)) {
                    delay += config_.l1_hit_cycles;
                    stall_mem_cycles_ += config_.l1_hit_cycles;
                    if ((++inline_ops_ & 0x3FFFu) == 0u)
                        util::checkPointDeadline("Core::resume");
                    break;
                }
            }
            blocked_at_ = queue_->now() + delay;
            blocked_ = BlockKind::Mem;
            queue_->postIn(delay, EventKind::IssueLoad, uid_, addr);
            return;
          }
          case OpType::Store: {
            countInstructions(1);
            const Addr addr = op.addr;
            ++pc_;
            if (fast_path_) {
                // A writable (M/E) hit is accepted one cycle after issue.
                const Cycle at = queue_->now() + delay;
                if (queue_->nextEventTime() > at + 1 &&
                    memsys_->inlineStoreHit(id_, addr)) {
                    delay += 1;
                    stall_mem_cycles_ += 1;
                    if ((++inline_ops_ & 0x3FFFu) == 0u)
                        util::checkPointDeadline("Core::resume");
                    break;
                }
            }
            blocked_at_ = queue_->now() + delay;
            blocked_ = BlockKind::Mem;
            queue_->postIn(delay, EventKind::IssueStore, uid_, addr);
            return;
          }
          case OpType::Barrier: {
            ++pc_;
            blocked_at_ = queue_->now() + delay;
            blocked_ = BlockKind::Sync;
            queue_->postIn(delay, EventKind::IssueBarrier, uid_);
            return;
          }
          case OpType::Lock: {
            const std::uint64_t lock_id = op.addr;
            ++pc_;
            blocked_at_ = queue_->now() + delay;
            blocked_ = BlockKind::Sync;
            queue_->postIn(delay, EventKind::IssueLock, uid_, lock_id);
            return;
          }
          case OpType::Unlock: {
            const std::uint64_t lock_id = op.addr;
            ++pc_;
            // The release must occur at the correct simulated time and in
            // deterministic order, so route it through the event queue.
            blocked_at_ = queue_->now() + delay;
            blocked_ = BlockKind::Sync;
            queue_->postIn(delay, EventKind::IssueUnlock, uid_, lock_id);
            return;
          }
          case OpType::End: {
            queue_->postIn(delay, EventKind::CoreFinish, uid_);
            return;
          }
        }
    }
}

void
Core::finish()
{
    finished_ = true;
    finish_cycle_ = queue_->now();
    active_cycles_->increment(finish_cycle_);
    if (on_finish_)
        on_finish_();
}

} // namespace tlp::sim
