/**
 * @file
 * MemorySystem — private L1s, MESI snooping bus, shared inclusive L2, and
 * off-chip memory, with event-driven timing.
 *
 * Protocol summary (classic MESI over an atomic-grant split bus):
 *  - Load miss  -> BusRd:  an M owner supplies data cache-to-cache (and
 *    the line is written back to the L2), any E/S owners downgrade to S
 *    and the requester loads in S; with no owner the L2 (or memory below
 *    it) supplies data and the requester loads in E.
 *  - Store miss -> BusRdX: all other copies invalidate (M writes back);
 *    requester loads the line in M.
 *  - Store hit S -> BusUpgr: data-less invalidation round; line becomes M.
 *  - Store hit E -> silent E->M transition.
 *  - L1 M-eviction writes back to the L2; the inclusive L2 back-invalidates
 *    all covered L1 lines (two per 128 B L2 line) when it evicts.
 *
 * All protocol state changes are applied atomically when the bus grants a
 * transaction; grants are serialized through a FIFO arbiter, so there are
 * no transient races. Completion is signalled with typed events: a load
 * finishes with EventKind::MemDone for the issuing core, a store with
 * EventKind::StoreAccept when it occupies a buffer slot; the background
 * drain of a store buffer advances on EventKind::StoreDrained. A granted
 * bus transaction arrives as EventKind::BusGrant whose `aux` byte packs
 * the transaction kind and the completion event to emit — the event
 * dispatcher (Cmp's run loop, or a test harness via dispatch()) routes
 * both kinds back into this class.
 *
 * Store buffers are fixed-capacity rings with a per-line reference count,
 * so the store-to-load forwarding probe on every load is a scan of at
 * most `store_buffer_entries` distinct lines (typically zero or one)
 * instead of an O(depth) address walk, and draining pops in O(1).
 *
 * The memory round trip is fixed in nanoseconds and converted to core
 * cycles at the current chip frequency (chip-wide DVFS does not scale the
 * memory clock).
 */

#ifndef TLP_SIM_MEMORY_SYSTEM_HPP
#define TLP_SIM_MEMORY_SYSTEM_HPP

#include <deque>
#include <utility>
#include <vector>

#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "util/stats.hpp"

namespace tlp::sim {

/** The full cache/bus/memory hierarchy of the simulated chip. */
class MemorySystem
{
  public:
    /**
     * @param config  machine configuration
     * @param n_active cores actually running threads (arrays are built for
     *                all cores; only active ones issue requests)
     * @param freq_hz chip frequency for this run (memory-cycle conversion)
     * @param queue   the global event queue
     * @param stats   registry receiving the activity counters
     */
    MemorySystem(const CmpConfig& config, int n_active, double freq_hz,
                 EventQueue& queue, util::StatRegistry& stats);

    /**
     * Return the hierarchy to its cold state for a fresh run — every
     * cache line invalid, store buffers empty, bus idle — while keeping
     * the cache-line storage allocated, and rebind the activity counters
     * to @p stats. Semantically equivalent to destroying and
     * reconstructing the object (cold-cache runs), minus the large
     * per-run allocations.
     */
    void reset(int n_active, double freq_hz, util::StatRegistry& stats);

    /**
     * Issue a load from core @p core to @p addr. EventKind::MemDone for
     * @p core fires when the data is available (including the L1 hit
     * case, after the L1 hit latency).
     */
    void load(int core, Addr addr);

    /**
     * Issue a store from core @p core to @p addr.
     *
     * Stores retire through a per-core store buffer:
     * EventKind::StoreAccept for @p core fires when the store occupies a
     * buffer slot (1 cycle when a slot is free, later when the buffer is
     * full); the buffer drains in the background.
     */
    void store(int core, Addr addr);

    /**
     * Fast-path load probe: when @p addr is an L1 hit or a store-buffer
     * forward, perform the access completely (LRU touch + counters) and
     * return true; otherwise return false with NO state touched — the
     * caller must then take the ordinary load() path.
     */
    bool
    inlineLoadHit(int core, Addr addr)
    {
        CacheArray& l1 = l1_[static_cast<std::size_t>(core)];
        if (!l1.readHit(addr) &&
            !storeBufferCovers(core, l1.lineAddr(addr)))
            return false;
        CoreCounters& c = core_counters_[static_cast<std::size_t>(core)];
        c.loads->increment();
        c.l1d_reads->increment();
        return true;
    }

    /**
     * Fast-path store probe: when @p addr is writable in the L1 (M/E),
     * perform the access completely (M transition + LRU touch +
     * counters) and return true; otherwise return false with NO state
     * touched.
     */
    bool
    inlineStoreHit(int core, Addr addr)
    {
        if (!l1_[static_cast<std::size_t>(core)].writeHitUpgrade(addr))
            return false;
        CoreCounters& c = core_counters_[static_cast<std::size_t>(core)];
        c.stores->increment();
        c.l1d_writes->increment();
        return true;
    }

    /**
     * Consume a memory-system machinery event (BusGrant, StoreDrained)
     * and return true; any other kind returns false untouched. Cmp's
     * dispatcher routes these kinds directly; test harnesses that pump
     * the queue themselves call this first for every event.
     */
    bool
    dispatch(const Event& event)
    {
        switch (event.kind) {
          case EventKind::BusGrant:
            onBusGrant(static_cast<int>(event.arg), event.addr, event.aux);
            return true;
          case EventKind::StoreDrained:
            onStoreDrained(static_cast<int>(event.arg));
            return true;
          default:
            return false;
        }
    }

    /** Apply a granted bus transaction (EventKind::BusGrant). */
    void onBusGrant(int core, Addr addr, std::uint8_t aux);

    /** Head store of @p core's buffer performed (EventKind::StoreDrained):
     *  retire it, admit a stalled store if one waits, keep draining. */
    void onStoreDrained(int core);

    /** L1 data cache of @p core (tests/inspection). */
    const CacheArray& l1(int core) const { return l1_[core]; }

    /** The shared L2 (tests/inspection). */
    const CacheArray& l2() const { return l2_; }

    /** Outstanding store-buffer entries of @p core. */
    std::size_t storeBufferDepth(int core) const
    {
        return store_buffers_[core].count;
    }

    /** Stores of @p core waiting for a buffer slot (tests/inspection). */
    std::size_t storeBufferStalled(int core) const
    {
        return store_buffers_[core].stalled.size();
    }

    /** Cycle at which the bus becomes free (tests/inspection). */
    Cycle busNextFree() const { return bus_next_free_; }

    /**
     * MESI invariant check: no line is Modified/Exclusive in one L1 while
     * valid in another. Returns true when coherent.
     */
    bool checkCoherence() const;

  private:
    /** What a granted transaction should do. */
    enum class TxnKind : std::uint8_t { BusRd, BusRdX, BusUpgr, Writeback };

    /** Completion event a granted transaction emits. */
    enum class Notify : std::uint8_t { None, MemDone, StoreDrained };

    /** BusGrant aux byte: transaction kind | completion routing. */
    static std::uint8_t
    packGrant(TxnKind kind, Notify notify)
    {
        return static_cast<std::uint8_t>(
            static_cast<unsigned>(kind) |
            (static_cast<unsigned>(notify) << 4));
    }

    /**
     * Fixed-capacity FIFO of retiring stores plus the per-line reference
     * counts that answer the forwarding probe, and the overflow queue of
     * stores waiting for a slot.
     */
    struct StoreBuffer
    {
        std::vector<Addr> ring; ///< capacity = store_buffer_entries
        std::uint32_t head = 0;
        std::uint32_t count = 0;
        bool draining = false;
        std::deque<Addr> stalled; ///< stores waiting for a slot
        /** (line, pending stores) pairs; at most `capacity` entries. */
        std::vector<std::pair<Addr, std::uint32_t>> line_refs;
    };

    /** True when a buffered store of @p core covers L1 line @p line. */
    bool
    storeBufferCovers(int core, Addr line) const
    {
        const StoreBuffer& b = store_buffers_[static_cast<std::size_t>(core)];
        for (const auto& [l, n] : b.line_refs) {
            if (l == line)
                return n != 0;
        }
        return false;
    }

    void bufferPush(int core, Addr addr);
    Addr bufferPop(int core);

    /** Reserve the bus for @p occupancy cycles; returns the grant cycle. */
    Cycle reserveBus(std::uint32_t occupancy);

    /** Issue a transaction: arbitrate, then apply at grant time. */
    void issue(TxnKind kind, int core, Addr addr, Notify notify);

    /** Apply a granted transaction; returns the data latency from grant. */
    std::uint32_t applyAtGrant(TxnKind kind, int core, Addr addr);

    /** L2 lookup/fill for a line fetch; returns latency from grant and
     *  performs fills/evictions. */
    std::uint32_t fetchThroughL2(int core, Addr addr);

    /** Insert into an L1, handling the victim writeback. */
    void l1Insert(int core, Addr addr, Mesi state);

    /** Back-invalidate every L1 copy covered by an evicted L2 line. */
    void backInvalidate(Addr l2_line);

    void drainStoreBuffer(int core);

    /** Pre-resolved per-core activity counters (the per-access string
     *  concatenation and map lookup would dominate the hot path). */
    struct CoreCounters
    {
        util::Counter* loads;
        util::Counter* stores;
        util::Counter* l1d_reads;
        util::Counter* l1d_writes;
        util::Counter* l1d_misses;
        util::Counter* l1d_fills;
        util::Counter* l1d_writebacks;
    };

    /** Resolve every counter pointer against @p stats (node-based map:
     *  pointers stay valid as later counters are created). */
    void bindCounters(util::StatRegistry& stats);

    CmpConfig config_;
    int n_active_;
    std::uint32_t memory_cycles_;
    EventQueue* queue_;
    util::StatRegistry* stats_;

    std::vector<CacheArray> l1_;
    CacheArray l2_;
    std::vector<StoreBuffer> store_buffers_;
    Cycle bus_next_free_ = 0;

    std::vector<CoreCounters> core_counters_;
    util::Counter* bus_transactions_ = nullptr;
    util::Counter* bus_c2c_transfers_ = nullptr;
    util::Counter* bus_upgrades_ = nullptr;
    util::Counter* l2_reads_ = nullptr;
    util::Counter* l2_writes_ = nullptr;
    util::Counter* l2_misses_ = nullptr;
    util::Counter* memory_reads_ = nullptr;
    util::Counter* memory_writes_ = nullptr;
};

} // namespace tlp::sim

#endif // TLP_SIM_MEMORY_SYSTEM_HPP
