/**
 * @file
 * The analytical CMP chip model (§2 of the paper).
 *
 * Binds a process technology (alpha-power law + leakage fit + nominal power
 * split) to a tiled-die thermal model and anchors the calibration the paper
 * uses: a single core running at full throttle (V1, f1) reaches exactly
 * T1 = 100 C. Given any operating point (N active cores, supply voltage,
 * frequency), evaluate() runs the power <-> temperature fixed point and
 * returns total dynamic/static power plus the converged die temperature.
 *
 * As in the paper's analytical study, unused cores are shut off (zero
 * power) and the chip has a constant activity factor, i.e. per-core dynamic
 * power is P_D1 * (V/V1)^2 * (f/f1).
 */

#ifndef TLP_MODEL_ANALYTIC_CMP_HPP
#define TLP_MODEL_ANALYTIC_CMP_HPP

#include <vector>

#include "tech/technology.hpp"
#include "thermal/rc_model.hpp"

namespace tlp::model {

/** A chip-wide operating point. */
struct OperatingPoint
{
    int n_active = 1;  ///< cores running the application
    double vdd = 0.0;  ///< chip supply voltage [V]
    double freq = 0.0; ///< chip clock frequency [Hz]
};

/** Converged power/thermal state at an operating point. */
struct PowerBreakdown
{
    double dynamic_w = 0.0;       ///< total dynamic power [W]
    double static_w = 0.0;        ///< total static power [W]
    double total_w = 0.0;         ///< dynamic + static [W]
    double avg_active_temp_c = 0.0; ///< area-weighted over active cores
    double max_temp_c = 0.0;      ///< hottest block
    int iterations = 0;           ///< fixed-point iterations used
    bool converged = false;
    bool runaway = false;         ///< leakage-thermal runaway detected
};

/** Calibrated analytical chip model. */
class AnalyticCmp
{
  public:
    /**
     * @param tech        process technology
     * @param total_cores cores on the die (the paper's analytical baseline
     *                    is a 32-way CMP)
     * @param thermal_feedback when false, leakage is evaluated at the hot
     *                    anchor temperature instead of the converged one
     *                    (ablation knob; the paper's model keeps it on)
     */
    AnalyticCmp(tech::Technology tech, int total_cores,
                bool thermal_feedback = true, double sink_fraction = 0.6);

    /** Evaluate total power and temperature at @p op via the coupled
     *  power/temperature fixed point. */
    PowerBreakdown evaluate(const OperatingPoint& op) const;

    /**
     * Batched evaluate(): the whole grid of operating points iterates
     * the coupled fixed point in lockstep, each iteration solving every
     * unconverged point in one multi-RHS pass over the cached thermal
     * factor. Entry p is byte-identical to evaluate(ops[p]) — the
     * per-point arithmetic is the scalar path's, batching only amortizes
     * factor traversals. Safe to call concurrently on a shared const
     * model (scratch is per-call).
     */
    std::vector<PowerBreakdown>
    evaluateBatch(const std::vector<OperatingPoint>& ops) const;

    /**
     * Heterogeneous evaluation: core i runs at (vdd[i], freq[i]); both
     * vectors share one size = the active core count (remaining cores
     * are shut off). Used by the per-core DVFS extension; assumes
     * per-core voltage islands.
     */
    PowerBreakdown evaluatePerCore(const std::vector<double>& vdd,
                                   const std::vector<double>& freq) const;

    /** Single-core full-throttle total power, the paper's P1 [W]; by
     *  calibration this runs at tHotC() (100 C). */
    double singleCorePower() const;

    const tech::Technology& technology() const { return tech_; }
    int totalCores() const { return total_cores_; }
    bool thermalFeedback() const { return thermal_feedback_; }

    /** The calibrated thermal solver (exposed for inspection/tests). */
    const thermal::RCModel& thermalModel() const { return thermal_; }

  private:
    std::vector<double> activePowerMap(const OperatingPoint& op,
                                       const std::vector<double>& temps)
        const;
    /** Allocation-free activePowerMap() kernel: @p dyn_core is the
     *  per-core dynamic power of the point (precomputed once per
     *  evaluation); both entry points share it, so scalar and batched
     *  power maps are bitwise equal. */
    void activePowerMapInto(int n_active, double vdd, double dyn_core,
                            const std::vector<double>& temps,
                            std::vector<double>& power) const;
    void validateOperatingPoint(const OperatingPoint& op) const;
    /** Shared evaluate()/evaluateBatch() epilogue. */
    PowerBreakdown breakdownFrom(const thermal::CoupledResult& result,
                                 const OperatingPoint& op) const;
    double averageActiveTemp(const thermal::ThermalSolution& sol,
                             int n_active) const;

    tech::Technology tech_;
    int total_cores_;
    bool thermal_feedback_;
    thermal::RCModel thermal_;
};

} // namespace tlp::model

#endif // TLP_MODEL_ANALYTIC_CMP_HPP
