/**
 * @file
 * Scenario I — power optimization given a performance target (§2.2).
 *
 * Every N-core configuration must deliver the performance of the sequential
 * execution at full throttle. From Eq. 7 the required chip frequency is
 *
 *     f_N = f1 / (N * eps_n(N)),
 *
 * the supply voltage is the smallest one sustaining f_N under the
 * alpha-power law (clamped at the technology's noise-margin floor), and
 * total power follows Eq. 9 with the die temperature from the thermal
 * fixed point. Configurations with N * eps_n(N) < 1 would need f_N > f1
 * and are reported infeasible, exactly as in the paper.
 */

#ifndef TLP_MODEL_SCENARIO1_HPP
#define TLP_MODEL_SCENARIO1_HPP

#include <utility>
#include <vector>

#include "model/analytic_cmp.hpp"
#include "model/efficiency.hpp"

namespace tlp::model {

/** Solution of the Scenario I problem for one (N, eps_n) point. */
struct Scenario1Result
{
    int n = 1;                ///< active cores
    double eps_n = 1.0;       ///< nominal parallel efficiency used
    bool feasible = false;    ///< N * eps_n >= 1
    double freq = 0.0;        ///< chip frequency [Hz]
    double vdd = 0.0;         ///< chip supply [V]
    bool v_floor_hit = false; ///< voltage clamped at the noise-margin floor
    PowerBreakdown power;     ///< converged power/thermal state
    /** P_N / P1: total power normalized to the single-core full-throttle
     *  configuration. */
    double normalized_power = 0.0;
};

/** Scenario I solver bound to a calibrated chip model. */
class Scenario1
{
  public:
    explicit Scenario1(const AnalyticCmp& cmp) : cmp_(&cmp) {}

    /** Solve for a given core count and nominal efficiency value. */
    Scenario1Result solve(int n, double eps_n) const;

    /** Solve along an application's efficiency curve. */
    Scenario1Result solve(int n, const EfficiencyCurve& curve) const
    {
        return solve(n, curve.at(n));
    }

    /**
     * Batched solve(): entry p is byte-identical to solve(points[p]).
     * The per-point preamble (Eq. 7 frequency, minimal voltage) stays
     * scalar; all feasible points then share one lockstep thermal fixed
     * point (AnalyticCmp::evaluateBatch), so a whole figure row is
     * priced with multi-RHS solves against the cached factorization.
     */
    std::vector<Scenario1Result>
    solveBatch(const std::vector<std::pair<int, double>>& points) const;

  private:
    /** Scalar preamble shared by solve()/solveBatch(): validation,
     *  feasibility, target frequency and voltage. Returns false when the
     *  point is infeasible (result already filled). */
    bool prepare(int n, double eps_n, Scenario1Result& result) const;

    const AnalyticCmp* cmp_;
};

} // namespace tlp::model

#endif // TLP_MODEL_SCENARIO1_HPP
