/**
 * @file
 * Per-core DVFS under load imbalance — an extension the paper flags as
 * "conceivable ... but beyond the scope of this paper" (§3.1) and whose
 * related work (Kadayif et al. [21]) exploits: when threads carry
 * unequal work, cores running light threads can be slowed individually
 * so that everyone finishes exactly at the barrier, instead of the whole
 * chip running at the frequency the heaviest thread needs.
 *
 * The solver compares, for a given per-thread work distribution and a
 * common deadline (the Scenario I performance target):
 *
 *  - global DVFS: every core at f_chip = f_heaviest (the paper's model);
 *  - per-core DVFS: core i at f_i proportional to its own work.
 *
 * Assumes per-core voltage/frequency islands; both configurations are
 * priced through the same coupled thermal model.
 */

#ifndef TLP_MODEL_PER_CORE_DVFS_HPP
#define TLP_MODEL_PER_CORE_DVFS_HPP

#include <vector>

#include "model/analytic_cmp.hpp"

namespace tlp::model {

/** Result of the balanced-deadline comparison. */
struct PerCoreDvfsResult
{
    bool feasible = false;        ///< heaviest thread meets the deadline
    std::vector<double> freqs;    ///< per-core frequency [Hz]
    std::vector<double> vdds;     ///< per-core supply [V]
    PowerBreakdown per_core;      ///< chip power with per-core DVFS
    PowerBreakdown global;        ///< chip power with global DVFS
    double saving_fraction = 0.0; ///< 1 - P_percore / P_global
};

/** Per-core DVFS solver bound to a calibrated chip model. */
class PerCoreDvfs
{
  public:
    explicit PerCoreDvfs(const AnalyticCmp& cmp) : cmp_(&cmp) {}

    /**
     * Solve for a work distribution at the Scenario I deadline.
     *
     * @param work_fractions share of the total (sequential) work carried
     *        by each thread; must be positive and sum to ~1. The number
     *        of threads is the vector's size.
     *
     * Thread i must retire `work_fractions[i] * W` instructions within
     * the sequential execution time `W * CPI / f1`, so it needs
     * `f_i = f1 * work_fractions[i]`; the global chip would need
     * `f_chip = f1 * max_i work_fractions[i]` on every core.
     */
    PerCoreDvfsResult solve(
        const std::vector<double>& work_fractions) const;

  private:
    const AnalyticCmp* cmp_;
};

} // namespace tlp::model

#endif // TLP_MODEL_PER_CORE_DVFS_HPP
