#include "model/multiprog.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

#include "sim/config.hpp"
#include "thermal/floorplan.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"

namespace tlp::model {

namespace {

/** Split @p spec on '+' into non-empty parts. */
std::vector<std::string>
splitApps(const std::string& spec)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const std::size_t plus = spec.find('+', start);
        const std::size_t end = plus == std::string::npos ? spec.size() : plus;
        parts.push_back(spec.substr(start, end - start));
        if (plus == std::string::npos)
            break;
        start = plus + 1;
    }
    return parts;
}

} // namespace

util::Expected<CoSchedule>
parseCoSchedule(const std::string& spec, int max_cores)
{
    CoSchedule sched;
    sched.name = spec;
    if (spec.empty())
        return util::Error(util::ErrorCode::InvalidArgument,
                           "empty co-schedule spec (expected "
                           "NAME:cores+NAME:cores)");
    for (const std::string& part : splitApps(spec)) {
        // The core count sits after the LAST ':' so trace:<path> specs
        // keep their own colon ("trace:t/fft.trc:4").
        const std::size_t colon = part.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == part.size())
            return util::Error(
                util::ErrorCode::InvalidArgument,
                util::strcatMsg("co-schedule part '", part,
                                "' is not NAME:cores"));
        const std::string name = part.substr(0, colon);
        const auto cores = util::parseInt(
            part.substr(colon + 1),
            util::strcatMsg("core count of co-schedule part '", part, "'"),
            1, max_cores);
        if (!cores)
            return cores.error();
        const auto app = workloads::resolve(name);
        if (!app)
            return util::Error(app.error()).withContext(
                util::strcatMsg("co-schedule part '", part, "'"));
        sched.apps.push_back(
            CoScheduledApp{app.value(), static_cast<int>(cores.value())});
    }
    const int total = sched.totalCores();
    if (total > max_cores)
        return util::Error(
            util::ErrorCode::InvalidArgument,
            util::strcatMsg("co-schedule '", spec, "' needs ", total,
                            " cores but the chip has ", max_cores));
    return sched;
}

namespace {

/** Measured grid of one co-scheduled app, plus its power decomposition
 *  at every level. */
struct AppGrid
{
    const workloads::WorkloadInfo* app = nullptr;
    int n = 0;
    runner::Measurement base;      ///< n = 1 at nominal V/f
    runner::Measurement nominal_n; ///< n cores at nominal V/f
    std::vector<runner::Measurement> at; ///< one per grid level
    std::vector<double> core_w;          ///< core-block power per level
    std::vector<double> uncore_w;        ///< uncore residue per level
};

} // namespace

util::Expected<MultiprogResult>
arbitrateCoSchedule(const runner::Experiment& exp, const CoSchedule& sched,
                    std::vector<double> freqs_hz, double budget_w)
{
    if (sched.apps.empty())
        return util::Error(util::ErrorCode::InvalidArgument,
                           "co-schedule has no applications");
    const int chip_cores = exp.cmp().config().n_cores;
    if (sched.totalCores() > chip_cores)
        return util::Error(
            util::ErrorCode::InvalidArgument,
            util::strcatMsg("co-schedule '", sched.name, "' needs ",
                            sched.totalCores(), " cores but the chip has ",
                            chip_cores));
    if (freqs_hz.empty())
        freqs_hz = exp.defaultFrequencyGrid();
    if (!std::is_sorted(freqs_hz.begin(), freqs_hz.end()))
        return util::Error(util::ErrorCode::InvalidArgument,
                           "frequency grid must be sorted ascending");
    const double f_nominal = exp.technology().fNominal();
    if (std::find(freqs_hz.begin(), freqs_hz.end(), f_nominal) ==
        freqs_hz.end())
        return util::Error(util::ErrorCode::InvalidArgument,
                           "frequency grid must contain the nominal "
                           "frequency");
    if (budget_w <= 0.0)
        budget_w = exp.maxSingleCorePower();

    const double vdd_nominal = exp.technology().vddNominal();
    // Area of one core tile: the density -> watts conversion for an app
    // occupying n_i tiles.
    const double per_core_area =
        exp.powerModel().floorplan().coreArea() / chip_cores;
    const std::size_t levels = freqs_hz.size();

    // Measure every app's full grid plus its two nominal baselines. All
    // points go through the caches, so a measureAll() prefetch (or a warm
    // raw-run store) makes this loop pure pricing or pure lookup.
    std::vector<AppGrid> grids;
    grids.reserve(sched.apps.size());
    for (const CoScheduledApp& a : sched.apps) {
        AppGrid g;
        g.app = a.app;
        g.n = a.n;
        auto base = exp.tryMeasureApp(*a.app, 1, vdd_nominal, f_nominal);
        if (!base)
            return std::move(base.error())
                .withContext(util::strcatMsg("co-schedule '", sched.name,
                                             "' baseline of ", a.app->name));
        g.base = base.value();
        auto nominal = exp.tryMeasureApp(*a.app, a.n, vdd_nominal, f_nominal);
        if (!nominal)
            return std::move(nominal.error())
                .withContext(util::strcatMsg("co-schedule '", sched.name,
                                             "' nominal point of ",
                                             a.app->name));
        g.nominal_n = nominal.value();
        g.at.reserve(levels);
        for (double f : freqs_hz) {
            auto m = f == f_nominal
                         ? std::move(nominal)
                         : exp.tryMeasureApp(*a.app, a.n,
                                             exp.vfTable().voltageFor(f), f);
            if (!m)
                return std::move(m.error())
                    .withContext(util::strcatMsg("co-schedule '", sched.name,
                                                 "' grid point of ",
                                                 a.app->name));
            // Decompose the stand-alone measurement: core part from the
            // active-core power density over the app's n_i tiles, uncore
            // residue = everything else (L2, bus, idle cores).
            const runner::Measurement& mm = m.value();
            const double core =
                mm.core_power_density_w_m2 * per_core_area * g.n;
            g.core_w.push_back(core);
            g.uncore_w.push_back(std::max(0.0, mm.total_w - core));
            g.at.push_back(mm);
        }
        grids.push_back(std::move(g));
    }

    // Composed chip power at a per-app level vector: sum of core parts
    // plus the largest uncore residue (the shared uncore priced once, at
    // the hungriest co-runner's demand). Monotone in every level.
    const auto chipPower = [&](const std::vector<std::size_t>& lv) {
        double core_sum = 0.0;
        double uncore_max = 0.0;
        for (std::size_t i = 0; i < grids.size(); ++i) {
            core_sum += grids[i].core_w[lv[i]];
            uncore_max = std::max(uncore_max, grids[i].uncore_w[lv[i]]);
        }
        return core_sum + uncore_max;
    };
    const auto runawayAt = [&](const std::vector<std::size_t>& lv) {
        for (std::size_t i = 0; i < grids.size(); ++i)
            if (grids[i].at[lv[i]].runaway)
                return true;
        return false;
    };
    const auto feasibleAt = [&](const std::vector<std::size_t>& lv) {
        return chipPower(lv) <= budget_w && !runawayAt(lv);
    };

    MultiprogResult result;
    result.name = sched.name;
    result.budget_w = budget_w;

    std::vector<std::size_t> chosen(grids.size(), 0);
    result.feasible = feasibleAt(chosen);
    if (result.feasible) {
        // Binary search the highest common grid level within the budget
        // (chip power is monotone in the common level — the Scenario-2
        // feasibility idiom, lifted from one app to the composed chip).
        std::size_t lo = 0;
        std::size_t hi = levels - 1;
        const auto allAt = [&](std::size_t level) {
            return std::vector<std::size_t>(grids.size(), level);
        };
        if (feasibleAt(allAt(hi))) {
            lo = hi;
        } else {
            while (hi - lo > 1) {
                const std::size_t mid = lo + (hi - lo) / 2;
                (feasibleAt(allAt(mid)) ? lo : hi) = mid;
            }
        }
        chosen.assign(grids.size(), lo);

        // Water-fill the remaining headroom: repeated passes in
        // descriptor order, raising one app one level at a time while
        // the budget holds. Levels only ever increase, so the loop
        // terminates; the fixed order keeps the outcome deterministic.
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t i = 0; i < grids.size(); ++i) {
                if (chosen[i] + 1 >= levels)
                    continue;
                std::vector<std::size_t> next = chosen;
                ++next[i];
                if (feasibleAt(next)) {
                    chosen = std::move(next);
                    changed = true;
                }
            }
        }
    }
    result.chip_power_w = chipPower(chosen);
    for (std::size_t i = 0; i < grids.size(); ++i)
        result.uncore_w =
            std::max(result.uncore_w, grids[i].uncore_w[chosen[i]]);

    const int total_cores = sched.totalCores();
    for (std::size_t i = 0; i < grids.size(); ++i) {
        const AppGrid& g = grids[i];
        const std::size_t lv = chosen[i];
        MultiprogAppRow row;
        row.workload = g.app->name;
        row.n = g.n;
        row.freq_hz = freqs_hz[lv];
        row.vdd = g.at[lv].vdd;
        row.core_w = g.core_w[lv];
        row.uncore_w = g.uncore_w[lv];
        row.budget_share =
            result.chip_power_w > 0.0 ? g.core_w[lv] / result.chip_power_w
                                      : 0.0;
        row.speedup = g.base.seconds / g.at[lv].seconds;
        row.at_nominal = freqs_hz[lv] == f_nominal;
        // Fair-share reference: the app alone under a static per-core
        // budget split, straight through the Scenario-2 machinery.
        // scenario2Row throws FatalError on a failed measurement
        // (interpolation probes are not pre-warmed points), so contain
        // it here the way tryMeasure-family does.
        const double fair_budget =
            budget_w * static_cast<double>(g.n) / total_cores;
        try {
            const runner::Scenario2Row fair = exp.scenario2Row(
                *g.app, g.n, g.base, g.nominal_n, freqs_hz, fair_budget);
            row.fair_speedup = fair.actual_speedup;
        } catch (const util::FatalError& e) {
            return util::Error(util::ErrorCode::SimulationError, e.what())
                .withContext(util::strcatMsg("co-schedule '", sched.name,
                                             "' fair-share reference of ",
                                             g.app->name));
        }
        result.rows.push_back(std::move(row));
    }
    return result;
}

} // namespace tlp::model
