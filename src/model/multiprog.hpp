/**
 * @file
 * Multiprogrammed co-scheduling under one global power budget.
 *
 * The paper evaluates thread-level parallelism one application at a
 * time; this module adds the multiprogrammed dimension its ROADMAP item
 * calls for: k independent applications pinned to disjoint core sets of
 * the same CMP, sharing the L2, the bus, and — crucially — a single
 * chip-level power budget. Following Silva et al.'s observation that
 * energy-optimal operating points must be arbitrated globally rather
 * than per application in isolation, the arbitration below assigns each
 * application its own DVFS operating point such that the co-scheduled
 * chip stays within the budget.
 *
 * Power composition model: each application's stand-alone measurement at
 * its core count n_i decomposes into a core part (its measured active-
 * core power density times the area of its n_i tiles) and an uncore
 * residue (shared L2/bus/idle-core power). Co-scheduled chip power is
 * the sum of the per-app core parts plus the *maximum* uncore residue —
 * the shared uncore is priced once, at the demand of the hungriest
 * co-runner, which is conservative for the budget check and keeps the
 * composed power monotone in every per-app frequency (the property the
 * binary search needs).
 *
 * Arbitration: find the highest common V/f grid level all apps can run
 * at within the budget (binary search over the monotone composed power,
 * the Scenario-2 feasibility idiom), then deterministically water-fill
 * the remaining headroom — repeated passes in descriptor order raising
 * one app one grid level at a time while the budget holds. Everything is
 * a pure function of the measured grid, so the outcome is byte-identical
 * at every job count, and a warm raw-run store prices a repeat run with
 * zero simulations.
 *
 * The fair-share reference column reuses Experiment::scenario2Row
 * verbatim: each app alone under budget_w * n_i / total_cores — what the
 * app would get if the budget were split by core count with no
 * co-runner interference — so the table shows what global arbitration
 * buys or costs each workload relative to a static split.
 */

#ifndef TLP_MODEL_MULTIPROG_HPP
#define TLP_MODEL_MULTIPROG_HPP

#include <string>
#include <vector>

#include "runner/experiment.hpp"
#include "util/error.hpp"
#include "workloads/workload.hpp"

namespace tlp::model {

/** One application of a co-schedule, pinned to @p n dedicated cores. */
struct CoScheduledApp
{
    const workloads::WorkloadInfo* app = nullptr;
    int n = 1;
};

/** k applications on disjoint core sets of one chip. */
struct CoSchedule
{
    std::string name; ///< display name, e.g. "FFT:8+Ocean:8"
    std::vector<CoScheduledApp> apps;

    int totalCores() const
    {
        int total = 0;
        for (const CoScheduledApp& a : apps)
            total += a.n;
        return total;
    }
};

/**
 * Parse a co-schedule spec "NAME:cores+NAME:cores[+...]", e.g.
 * "FFT:8+Ocean:8" or "trace:traces/fft.trc:4+Radix:12". The core count
 * is taken from the LAST ':' of each part, so trace:<path> specs keep
 * their own colon; paths must not contain '+'. Workload names resolve
 * through workloads::resolve() (suite names and trace specs). Core
 * counts must be >= 1 and sum to at most @p max_cores.
 */
util::Expected<CoSchedule> parseCoSchedule(const std::string& spec,
                                           int max_cores);

/** Per-app outcome of one arbitrated co-schedule. */
struct MultiprogAppRow
{
    std::string workload; ///< display name
    int n = 0;            ///< dedicated cores
    double freq_hz = 0.0; ///< arbitrated operating frequency
    double vdd = 0.0;
    double core_w = 0.0;   ///< core-block power at the chosen point
    double uncore_w = 0.0; ///< this app's stand-alone uncore residue
    /** Fraction of the arbitrated chip power attributed to this app's
     *  cores. */
    double budget_share = 0.0;
    /** Wall-clock speedup vs this app's own sequential (n = 1) run at
     *  nominal V/f — the paper's speedup normalization. */
    double speedup = 0.0;
    /** scenario2Row speedup of the app alone under the fair static
     *  budget split budget * n / total_cores. */
    double fair_speedup = 0.0;
    bool at_nominal = false; ///< arbitrated to full nominal V/f
};

/** One arbitrated co-schedule. */
struct MultiprogResult
{
    std::string name;        ///< CoSchedule display name
    double budget_w = 0.0;   ///< the global budget arbitrated against
    double chip_power_w = 0.0; ///< composed chip power at the outcome
    /** Shared-uncore residue priced into chip_power_w (the max over
     *  the co-runners). */
    double uncore_w = 0.0;
    /** False when even the lowest grid point exceeds the budget; the
     *  rows then carry the lowest-point data for diagnosis. */
    bool feasible = false;
    std::vector<MultiprogAppRow> rows; ///< one per app, descriptor order
};

/**
 * Arbitrate @p sched against @p budget_w on @p exp's testbed.
 *
 * @param freqs_hz V/f grid, sorted ascending and containing the nominal
 *                 frequency; empty selects exp.defaultFrequencyGrid()
 * @param budget_w global chip budget; <= 0 selects the paper's default,
 *                 the microbenchmark-derived single-core maximum
 *
 * Measurement failures (simulation/pricing errors at any probed point)
 * surface as the typed error of the failing point. All probed points
 * are served through the attached caches, so pre-warming them (e.g.
 * SweepRunner::measureAll over apps x grid) parallelizes the expensive
 * part without changing a byte of the outcome.
 */
util::Expected<MultiprogResult>
arbitrateCoSchedule(const runner::Experiment& exp, const CoSchedule& sched,
                    std::vector<double> freqs_hz = {},
                    double budget_w = 0.0);

} // namespace tlp::model

#endif // TLP_MODEL_MULTIPROG_HPP
