/**
 * @file
 * Parallel-efficiency abstractions (Eq. 6 of the paper).
 *
 * The nominal parallel efficiency eps_n(N) = T1 / (N * T_N) at unscaled
 * frequency characterizes an application's parallel behaviour on the CMP
 * independent of power considerations. The analytical scenarios consume an
 * EfficiencyCurve; the experimental pipeline builds a TabulatedEfficiency
 * from profiled execution times.
 */

#ifndef TLP_MODEL_EFFICIENCY_HPP
#define TLP_MODEL_EFFICIENCY_HPP

#include <map>
#include <memory>

namespace tlp::model {

/** Interface: nominal parallel efficiency as a function of core count. */
class EfficiencyCurve
{
  public:
    virtual ~EfficiencyCurve() = default;

    /** eps_n(N); may exceed 1 for superlinear applications. N >= 1 and
     *  eps_n(1) == 1 by definition. */
    virtual double at(int n) const = 0;

    /** Nominal speedup N * eps_n(N). */
    double nominalSpeedup(int n) const { return n * at(n); }
};

/** eps_n(N) = c for all N > 1 (and 1 at N = 1); the idealization used in
 *  the paper's Figure 2 (c = 1). */
class ConstantEfficiency : public EfficiencyCurve
{
  public:
    explicit ConstantEfficiency(double value);
    double at(int n) const override;

  private:
    double value_;
};

/** Amdahl's law: speedup = 1 / (s + (1-s)/N), so
 *  eps_n(N) = 1 / (N*s + (1-s)). */
class AmdahlEfficiency : public EfficiencyCurve
{
  public:
    /** @param serial_fraction non-parallelizable share s in [0, 1]. */
    explicit AmdahlEfficiency(double serial_fraction);
    double at(int n) const override;

  private:
    double serial_fraction_;
};

/** Communication-overhead model: eps_n(N) = 1 / (1 + sigma * (N - 1)),
 *  the linear-overhead family used to mark the "sample application" working
 *  points in Figure 1. */
class OverheadEfficiency : public EfficiencyCurve
{
  public:
    /** @param sigma per-extra-core relative communication overhead. */
    explicit OverheadEfficiency(double sigma);
    double at(int n) const override;

  private:
    double sigma_;
};

/** Efficiency curve tabulated from measurements (profiled runs); values for
 *  unmeasured N interpolate geometrically between neighbours. */
class TabulatedEfficiency : public EfficiencyCurve
{
  public:
    /** @param samples map N -> eps_n(N); must contain N = 1. */
    explicit TabulatedEfficiency(std::map<int, double> samples);
    double at(int n) const override;

  private:
    std::map<int, double> samples_;
};

} // namespace tlp::model

#endif // TLP_MODEL_EFFICIENCY_HPP
