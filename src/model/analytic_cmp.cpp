#include "model/analytic_cmp.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace tlp::model {

namespace {

thermal::RCModel
makeCalibratedThermal(const tech::Technology& tech, int total_cores,
                      double sink_fraction)
{
    // Single-tile-per-core die; the analytical study assumes a constant
    // activity factor and explicitly excludes low-activity blocks such as
    // the L2 from its power density reasoning, so no L2 block here.
    thermal::Floorplan plan = thermal::makeTiledCmp(
        total_cores, tech.coreAreaM2(), /*l2_area_m2=*/0.0,
        /*per_core_blocks=*/false);

    thermal::RCModel model(std::move(plan), thermal::RCParams{});

    // Anchor: one core at full throttle dissipating P1 sits at T1 = 100 C,
    // with the shared heat sink carrying most of the rise so that die
    // temperature tracks total chip power (HotSpot-like package).
    std::vector<double> power(model.floorplan().size(), 0.0);
    const std::size_t core0 = model.floorplan().indexOf("core0");
    power[core0] = tech.corePowerHot();
    thermal::calibratePackage(
        model, power,
        [core0](const thermal::ThermalSolution& sol) {
            return sol.block_temps_c[core0];
        },
        tech.tHotC(), sink_fraction);
    return model;
}

} // namespace

AnalyticCmp::AnalyticCmp(tech::Technology tech, int total_cores,
                         bool thermal_feedback, double sink_fraction)
    : tech_(std::move(tech)), total_cores_(total_cores),
      thermal_feedback_(thermal_feedback),
      thermal_(makeCalibratedThermal(tech_, total_cores, sink_fraction))
{
    if (total_cores < 1)
        util::fatal("AnalyticCmp: need at least one core");
}

double
AnalyticCmp::singleCorePower() const
{
    return tech_.corePowerHot();
}

void
AnalyticCmp::activePowerMapInto(int n_active, double vdd, double dyn_core,
                                const std::vector<double>& temps,
                                std::vector<double>& power) const
{
    const auto& blocks = thermal_.floorplan().blocks();
    power.assign(blocks.size(), 0.0);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const int core = blocks[i].core_id;
        if (core < 0 || core >= n_active)
            continue; // unused cores are shut off
        const double t = thermal_feedback_ ? temps[i] : tech_.tHotC();
        power[i] = dyn_core + tech_.staticPower(vdd, t);
    }
}

std::vector<double>
AnalyticCmp::activePowerMap(const OperatingPoint& op,
                            const std::vector<double>& temps) const
{
    std::vector<double> power;
    activePowerMapInto(op.n_active, op.vdd,
                       tech_.dynamicPower(op.vdd, op.freq), temps, power);
    return power;
}

double
AnalyticCmp::averageActiveTemp(const thermal::ThermalSolution& sol,
                               int n_active) const
{
    const auto& blocks = thermal_.floorplan().blocks();
    double area = 0.0;
    double temp_area = 0.0;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const int core = blocks[i].core_id;
        if (core < 0 || core >= n_active)
            continue;
        area += blocks[i].area();
        temp_area += sol.block_temps_c[i] * blocks[i].area();
    }
    return area > 0.0 ? temp_area / area : thermal_.params().ambient_c;
}

PowerBreakdown
AnalyticCmp::evaluatePerCore(const std::vector<double>& vdd,
                             const std::vector<double>& freq) const
{
    const int n_active = static_cast<int>(vdd.size());
    if (n_active < 1 || n_active > total_cores_)
        util::fatal("AnalyticCmp::evaluatePerCore: bad active count");
    if (freq.size() != vdd.size())
        util::fatal("AnalyticCmp::evaluatePerCore: vector size mismatch");
    for (int i = 0; i < n_active; ++i) {
        if (vdd[i] <= 0.0 || freq[i] < 0.0)
            util::fatal("AnalyticCmp::evaluatePerCore: bad point");
    }

    const auto& blocks = thermal_.floorplan().blocks();
    const auto result = thermal::solveCoupled(
        thermal_, [&](const std::vector<double>& temps) {
            std::vector<double> power(blocks.size(), 0.0);
            for (std::size_t i = 0; i < blocks.size(); ++i) {
                const int core = blocks[i].core_id;
                if (core < 0 || core >= n_active)
                    continue;
                const double t =
                    thermal_feedback_ ? temps[i] : tech_.tHotC();
                power[i] = tech_.dynamicPower(vdd[core], freq[core]) +
                    tech_.staticPower(vdd[core], t);
            }
            return power;
        });

    PowerBreakdown out;
    out.dynamic_w = 0.0;
    for (int i = 0; i < n_active; ++i)
        out.dynamic_w += tech_.dynamicPower(vdd[i], freq[i]);
    out.total_w = result.total_power;
    out.static_w = out.total_w - out.dynamic_w;
    out.avg_active_temp_c = averageActiveTemp(result.thermal, n_active);
    out.max_temp_c = result.thermal.max_temp_c;
    out.iterations = result.iterations;
    out.converged = result.converged;
    out.runaway = result.runaway;
    return out;
}

void
AnalyticCmp::validateOperatingPoint(const OperatingPoint& op) const
{
    if (op.n_active < 1 || op.n_active > total_cores_) {
        util::fatal(util::strcatMsg("AnalyticCmp::evaluate: n_active ",
                                    op.n_active, " outside [1, ",
                                    total_cores_, "]"));
    }
    if (op.vdd <= 0.0 || op.freq < 0.0)
        util::fatal("AnalyticCmp::evaluate: invalid operating point");
}

PowerBreakdown
AnalyticCmp::breakdownFrom(const thermal::CoupledResult& result,
                           const OperatingPoint& op) const
{
    PowerBreakdown out;
    out.dynamic_w = tech_.dynamicPower(op.vdd, op.freq) * op.n_active;
    out.total_w = result.total_power;
    out.static_w = out.total_w - out.dynamic_w;
    out.avg_active_temp_c =
        averageActiveTemp(result.thermal, op.n_active);
    out.max_temp_c = result.thermal.max_temp_c;
    out.iterations = result.iterations;
    out.converged = result.converged;
    out.runaway = result.runaway;
    return out;
}

PowerBreakdown
AnalyticCmp::evaluate(const OperatingPoint& op) const
{
    validateOperatingPoint(op);

    const auto result = thermal::solveCoupled(
        thermal_,
        [&](const std::vector<double>& temps) {
            return activePowerMap(op, temps);
        });

    return breakdownFrom(result, op);
}

std::vector<PowerBreakdown>
AnalyticCmp::evaluateBatch(const std::vector<OperatingPoint>& ops) const
{
    const std::size_t n_points = ops.size();
    std::vector<PowerBreakdown> out(n_points);
    if (n_points == 0)
        return out;
    for (const OperatingPoint& op : ops)
        validateOperatingPoint(op);

    // Per-point dynamic power is fixed across the fixed point; computing
    // it once per batch matches the scalar path bit for bit (it is a
    // pure function of the operating point).
    std::vector<double> dyn_core(n_points);
    for (std::size_t p = 0; p < n_points; ++p)
        dyn_core[p] = tech_.dynamicPower(ops[p].vdd, ops[p].freq);

    // Per-call scratch: a shared const AnalyticCmp is evaluated
    // concurrently from pool workers (the figure benches fan one model
    // across threads), so no mutable member state.
    thermal::CoupledBatchScratch scratch;
    const std::vector<thermal::CoupledResult> results =
        thermal::solveCoupledBatch(
            thermal_, n_points,
            [&](std::size_t p, const std::vector<double>& temps,
                std::vector<double>& power) {
                activePowerMapInto(ops[p].n_active, ops[p].vdd,
                                   dyn_core[p], temps, power);
            },
            scratch);

    for (std::size_t p = 0; p < n_points; ++p)
        out[p] = breakdownFrom(results[p], ops[p]);
    return out;
}

} // namespace tlp::model
