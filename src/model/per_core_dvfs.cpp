#include "model/per_core_dvfs.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hpp"

namespace tlp::model {

PerCoreDvfsResult
PerCoreDvfs::solve(const std::vector<double>& work_fractions) const
{
    const int n = static_cast<int>(work_fractions.size());
    if (n < 1 || n > cmp_->totalCores())
        util::fatal("PerCoreDvfs: bad thread count");
    double sum = 0.0;
    for (double w : work_fractions) {
        if (w <= 0.0)
            util::fatal("PerCoreDvfs: work fractions must be positive");
        sum += w;
    }
    if (std::fabs(sum - 1.0) > 1e-6)
        util::fatal("PerCoreDvfs: work fractions must sum to 1");

    const tech::Technology& tech = cmp_->technology();
    const double f1 = tech.fNominal();

    PerCoreDvfsResult result;
    const double heaviest =
        *std::max_element(work_fractions.begin(), work_fractions.end());
    // The heaviest thread needs f1 * w_max <= f1: always satisfiable
    // frequency-wise; the model (like Scenario I) only forbids
    // overclocking.
    result.feasible = heaviest <= 1.0 + 1e-9;
    if (!result.feasible)
        return result;

    const auto voltage_for = [&](double f) {
        double vdd = tech.frequencyLaw().voltageFor(f);
        return std::clamp(vdd, tech.vMin(), tech.vddNominal());
    };

    result.freqs.resize(n);
    result.vdds.resize(n);
    for (int i = 0; i < n; ++i) {
        result.freqs[i] = f1 * work_fractions[i];
        result.vdds[i] = voltage_for(result.freqs[i]);
    }
    result.per_core = cmp_->evaluatePerCore(result.vdds, result.freqs);

    // Global DVFS: everyone runs fast enough for the heaviest thread.
    const double f_chip = f1 * heaviest;
    const std::vector<double> g_freqs(n, f_chip);
    const std::vector<double> g_vdds(n, voltage_for(f_chip));
    result.global = cmp_->evaluatePerCore(g_vdds, g_freqs);

    if (result.global.total_w > 0.0) {
        result.saving_fraction =
            1.0 - result.per_core.total_w / result.global.total_w;
    }
    return result;
}

} // namespace tlp::model
