/**
 * @file
 * Scenario II — performance optimization under a power budget (§2.3).
 *
 * The power budget is the single-core full-throttle power P1. For a given
 * N the solver searches the supply voltage V in [v_min, V1]; at each V the
 * chip frequency is the smaller of
 *
 *  - the alpha-power-law maximum f_max(V), and
 *  - the budget-limited frequency from Eq. 11: since dynamic power is
 *    linear in f, f_budget = (P1 - P_S(N, V, T)) * f1 / (P_D1 * N * kappa^2)
 *    with the temperature T from the coupled thermal fixed point.
 *
 * Speedup follows Eq. 10: S = N * eps_n * f / f1. The solver maximizes S
 * over V with a scan + golden-section refinement. Once static power alone
 * exceeds the budget, the achievable frequency (and hence speedup) drops to
 * zero — the mechanism behind the paper's observation that a limited power
 * budget degrades performance rapidly beyond a number of cores.
 */

#ifndef TLP_MODEL_SCENARIO2_HPP
#define TLP_MODEL_SCENARIO2_HPP

#include <vector>

#include "model/analytic_cmp.hpp"
#include "model/efficiency.hpp"

namespace tlp::model {

/** Solution of the Scenario II problem for one (N, eps_n) point. */
struct Scenario2Result
{
    int n = 1;             ///< active cores
    double eps_n = 1.0;    ///< nominal parallel efficiency used
    double vdd = 0.0;      ///< optimal chip supply [V]
    double freq = 0.0;     ///< optimal chip frequency [Hz]
    double speedup = 0.0;  ///< S = N * eps_n * freq / f1
    bool budget_bound = false; ///< power budget (not f_max) limits freq
    bool feasible = true;  ///< false when static power alone exceeds budget
    PowerBreakdown power;  ///< converged power/thermal state at optimum
    double budget_w = 0.0; ///< the power budget used [W]
};

/** Scenario II solver bound to a calibrated chip model. */
class Scenario2
{
  public:
    /**
     * @param cmp      calibrated chip model
     * @param budget_w power budget [W]; <= 0 selects the paper's default,
     *                 the single-core full-throttle power P1
     */
    explicit Scenario2(const AnalyticCmp& cmp, double budget_w = 0.0);

    /**
     * Solve for a given core count and nominal efficiency value.
     *
     * The 24-sample voltage scan runs every candidate's budget fixed
     * point in lockstep through the batched thermal path; the returned
     * optimum is byte-identical to solveScalar().
     */
    Scenario2Result solve(int n, double eps_n) const;

    /** Solve along an application's efficiency curve. */
    Scenario2Result solve(int n, const EfficiencyCurve& curve) const
    {
        return solve(n, curve.at(n));
    }

    /** Fully scalar reference implementation of solve() — one coupled
     *  fixed point per voltage sample (util::maximizeScan). Differential
     *  tests pit solve() against it. */
    Scenario2Result solveScalar(int n, double eps_n) const;

    double budget() const { return budget_w_; }

  private:
    /** Best frequency at a fixed voltage, with the thermal fixed point. */
    double frequencyAt(int n, double vdd) const;

    /** frequencyAt() across many voltage candidates in lockstep; entry i
     *  is byte-identical to frequencyAt(n, vdds[i]). */
    std::vector<double> frequencyAtBatch(int n,
                                         const std::vector<double>& vdds)
        const;

    void validate(int n, double eps_n) const;

    /** Shared solve()/solveScalar() epilogue at the chosen voltage. */
    Scenario2Result resultAt(int n, double eps_n, double vdd) const;

    const AnalyticCmp* cmp_;
    double budget_w_;
};

} // namespace tlp::model

#endif // TLP_MODEL_SCENARIO2_HPP
