#include "model/scenario1.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace tlp::model {

Scenario1Result
Scenario1::solve(int n, double eps_n) const
{
    if (n < 1 || n > cmp_->totalCores()) {
        util::fatal(util::strcatMsg("Scenario1: N = ", n, " outside [1, ",
                                    cmp_->totalCores(), "]"));
    }
    if (eps_n <= 0.0)
        util::fatal("Scenario1: eps_n must be positive");

    const tech::Technology& tech = cmp_->technology();
    Scenario1Result result;
    result.n = n;
    result.eps_n = eps_n;

    // Eq. 7: the frequency that matches single-core performance.
    const double f_target = tech.fNominal() / (n * eps_n);
    if (f_target > tech.fNominal() + 1e-6) {
        // Would require overclocking beyond f1, which the model forbids.
        result.feasible = false;
        return result;
    }
    result.feasible = true;
    result.freq = f_target;

    // Smallest voltage sustaining f_target, clamped at the noise margin.
    double vdd = tech.frequencyLaw().voltageFor(f_target);
    if (vdd < tech.vMin()) {
        vdd = tech.vMin();
        result.v_floor_hit = true;
    }
    vdd = std::min(vdd, tech.vddNominal());
    result.vdd = vdd;

    result.power = cmp_->evaluate({n, vdd, f_target});
    result.normalized_power =
        result.power.total_w / cmp_->singleCorePower();
    return result;
}

} // namespace tlp::model
