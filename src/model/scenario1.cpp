#include "model/scenario1.hpp"

#include <algorithm>
#include <cstddef>

#include "util/logging.hpp"

namespace tlp::model {

bool
Scenario1::prepare(int n, double eps_n, Scenario1Result& result) const
{
    if (n < 1 || n > cmp_->totalCores()) {
        util::fatal(util::strcatMsg("Scenario1: N = ", n, " outside [1, ",
                                    cmp_->totalCores(), "]"));
    }
    if (eps_n <= 0.0)
        util::fatal("Scenario1: eps_n must be positive");

    const tech::Technology& tech = cmp_->technology();
    result.n = n;
    result.eps_n = eps_n;

    // Eq. 7: the frequency that matches single-core performance.
    const double f_target = tech.fNominal() / (n * eps_n);
    if (f_target > tech.fNominal() + 1e-6) {
        // Would require overclocking beyond f1, which the model forbids.
        result.feasible = false;
        return false;
    }
    result.feasible = true;
    result.freq = f_target;

    // Smallest voltage sustaining f_target, clamped at the noise margin.
    double vdd = tech.frequencyLaw().voltageFor(f_target);
    if (vdd < tech.vMin()) {
        vdd = tech.vMin();
        result.v_floor_hit = true;
    }
    vdd = std::min(vdd, tech.vddNominal());
    result.vdd = vdd;
    return true;
}

Scenario1Result
Scenario1::solve(int n, double eps_n) const
{
    Scenario1Result result;
    if (!prepare(n, eps_n, result))
        return result;

    result.power = cmp_->evaluate({n, result.vdd, result.freq});
    result.normalized_power =
        result.power.total_w / cmp_->singleCorePower();
    return result;
}

std::vector<Scenario1Result>
Scenario1::solveBatch(const std::vector<std::pair<int, double>>& points) const
{
    std::vector<Scenario1Result> results(points.size());
    std::vector<OperatingPoint> ops;
    std::vector<std::size_t> op_owner;
    ops.reserve(points.size());
    op_owner.reserve(points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
        if (prepare(points[p].first, points[p].second, results[p])) {
            ops.push_back({results[p].n, results[p].vdd, results[p].freq});
            op_owner.push_back(p);
        }
    }

    const std::vector<PowerBreakdown> powers = cmp_->evaluateBatch(ops);
    for (std::size_t k = 0; k < ops.size(); ++k) {
        Scenario1Result& result = results[op_owner[k]];
        result.power = powers[k];
        result.normalized_power =
            result.power.total_w / cmp_->singleCorePower();
    }
    return results;
}

} // namespace tlp::model
