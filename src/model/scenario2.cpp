#include "model/scenario2.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "util/logging.hpp"
#include "util/solver.hpp"

namespace tlp::model {

Scenario2::Scenario2(const AnalyticCmp& cmp, double budget_w)
    : cmp_(&cmp),
      budget_w_(budget_w > 0.0 ? budget_w : cmp.singleCorePower())
{
}

double
Scenario2::frequencyAt(int n, double vdd) const
{
    const tech::Technology& tech = cmp_->technology();
    const double f1 = tech.fNominal();
    const double f_cap = std::min(tech.frequencyLaw().maxFrequency(vdd), f1);
    if (f_cap <= 0.0)
        return 0.0;

    const double kappa = vdd / tech.vddNominal();
    const double dyn_per_hz =
        n * tech.dynamicPowerNominal() * kappa * kappa / f1;

    // Fixed point on f: static power depends on temperature, which depends
    // on total power, which depends on f. Dynamic power is linear in f, so
    // each step solves the budget equality exactly for the current static
    // estimate.
    double f = f_cap;
    for (int it = 0; it < 60; ++it) {
        const PowerBreakdown pb = cmp_->evaluate({n, vdd, f});
        const double headroom = budget_w_ - pb.static_w;
        double f_budget = headroom <= 0.0 ? 0.0 : headroom / dyn_per_hz;
        const double f_next = std::clamp(f_budget, 0.0, f_cap);
        if (std::fabs(f_next - f) <= 1e-4 * tech.fNominal()) {
            f = f_next;
            break;
        }
        // Light damping keeps the leakage-temperature loop stable.
        f = 0.5 * f + 0.5 * f_next;
    }
    return f;
}

std::vector<double>
Scenario2::frequencyAtBatch(int n, const std::vector<double>& vdds) const
{
    const tech::Technology& tech = cmp_->technology();
    const double f1 = tech.fNominal();
    const std::size_t n_points = vdds.size();

    std::vector<double> f(n_points, 0.0);
    std::vector<double> f_cap(n_points, 0.0);
    std::vector<double> dyn_per_hz(n_points, 0.0);
    std::vector<std::size_t> active;
    active.reserve(n_points);
    for (std::size_t p = 0; p < n_points; ++p) {
        f_cap[p] = std::min(tech.frequencyLaw().maxFrequency(vdds[p]), f1);
        if (f_cap[p] <= 0.0)
            continue; // scalar frequencyAt() returns 0 without iterating
        const double kappa = vdds[p] / tech.vddNominal();
        dyn_per_hz[p] = n * tech.dynamicPowerNominal() * kappa * kappa / f1;
        f[p] = f_cap[p];
        active.push_back(p);
    }

    // Lockstep image of the scalar fixed point: every iteration evaluates
    // all unconverged candidates in one batched thermal pass, then applies
    // the scalar update verbatim. A candidate leaves the active set at the
    // exact step where the scalar loop would break, so each entry of f is
    // bit-for-bit the scalar result.
    std::vector<OperatingPoint> ops;
    ops.reserve(active.size());
    for (int it = 0; it < 60 && !active.empty(); ++it) {
        ops.clear();
        for (std::size_t p : active)
            ops.push_back({n, vdds[p], f[p]});
        const std::vector<PowerBreakdown> pbs = cmp_->evaluateBatch(ops);

        std::size_t kept = 0;
        for (std::size_t k = 0; k < active.size(); ++k) {
            const std::size_t p = active[k];
            const double headroom = budget_w_ - pbs[k].static_w;
            double f_budget =
                headroom <= 0.0 ? 0.0 : headroom / dyn_per_hz[p];
            const double f_next = std::clamp(f_budget, 0.0, f_cap[p]);
            if (std::fabs(f_next - f[p]) <= 1e-4 * tech.fNominal()) {
                f[p] = f_next;
                continue; // converged: the scalar loop breaks here
            }
            f[p] = 0.5 * f[p] + 0.5 * f_next;
            active[kept++] = p;
        }
        active.resize(kept);
    }
    return f;
}

void
Scenario2::validate(int n, double eps_n) const
{
    if (n < 1 || n > cmp_->totalCores()) {
        util::fatal(util::strcatMsg("Scenario2: N = ", n, " outside [1, ",
                                    cmp_->totalCores(), "]"));
    }
    if (eps_n <= 0.0)
        util::fatal("Scenario2: eps_n must be positive");
}

Scenario2Result
Scenario2::resultAt(int n, double eps_n, double vdd) const
{
    const tech::Technology& tech = cmp_->technology();
    const double f1 = tech.fNominal();

    Scenario2Result result;
    result.n = n;
    result.eps_n = eps_n;
    result.budget_w = budget_w_;

    result.vdd = vdd;
    result.freq = frequencyAt(n, result.vdd);
    result.speedup = n * eps_n * result.freq / f1;
    result.feasible = result.freq > 0.0;
    if (result.feasible) {
        result.power = cmp_->evaluate({n, result.vdd, result.freq});
        const double f_cap = std::min(
            tech.frequencyLaw().maxFrequency(result.vdd), f1);
        result.budget_bound = result.freq < f_cap - 1e-3 * f1;
    }
    return result;
}

Scenario2Result
Scenario2::solve(int n, double eps_n) const
{
    validate(n, eps_n);

    const tech::Technology& tech = cmp_->technology();
    const double f1 = tech.fNominal();
    const double lo = tech.vMin();
    const double hi = tech.vddNominal();

    // The grid leg of util::maximizeScan, with all 24 candidates' budget
    // fixed points advanced in lockstep: same abscissas, same strict ">"
    // keep-first tie-breaking, same refinement bracket.
    constexpr int kSamples = 24;
    std::vector<double> grid(kSamples);
    grid[0] = lo;
    for (int i = 1; i < kSamples; ++i)
        grid[i] = lo + (hi - lo) * i / (kSamples - 1);
    const std::vector<double> freqs = frequencyAtBatch(n, grid);

    double best_x = grid[0];
    double best_f = n * eps_n * freqs[0] / f1;
    int best_i = 0;
    for (int i = 1; i < kSamples; ++i) {
        const double fx = n * eps_n * freqs[i] / f1;
        if (fx > best_f) {
            best_f = fx;
            best_x = grid[i];
            best_i = i;
        }
    }

    // Golden-section refinement stays scalar: it is inherently sequential
    // (each probe depends on the previous comparison) and touches only a
    // handful of points.
    const auto speedup_at = [&](double vdd) {
        return n * eps_n * frequencyAt(n, vdd) / f1;
    };
    const double step = (hi - lo) / (kSamples - 1);
    const double a = std::max(lo, lo + (best_i - 1) * step);
    const double b = std::min(hi, lo + (best_i + 1) * step);
    const util::MaxResult refined = util::goldenMax(speedup_at, a, b, 1e-4);
    const double vdd = refined.fx >= best_f ? refined.x : best_x;

    return resultAt(n, eps_n, vdd);
}

Scenario2Result
Scenario2::solveScalar(int n, double eps_n) const
{
    validate(n, eps_n);

    const tech::Technology& tech = cmp_->technology();
    const double f1 = tech.fNominal();

    const auto speedup_at = [&](double vdd) {
        return n * eps_n * frequencyAt(n, vdd) / f1;
    };
    const util::MaxResult best =
        util::maximizeScan(speedup_at, tech.vMin(), tech.vddNominal(), 24,
                           1e-4);

    return resultAt(n, eps_n, best.x);
}

} // namespace tlp::model
