#include "model/scenario2.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/solver.hpp"

namespace tlp::model {

Scenario2::Scenario2(const AnalyticCmp& cmp, double budget_w)
    : cmp_(&cmp),
      budget_w_(budget_w > 0.0 ? budget_w : cmp.singleCorePower())
{
}

double
Scenario2::frequencyAt(int n, double vdd) const
{
    const tech::Technology& tech = cmp_->technology();
    const double f1 = tech.fNominal();
    const double f_cap = std::min(tech.frequencyLaw().maxFrequency(vdd), f1);
    if (f_cap <= 0.0)
        return 0.0;

    const double kappa = vdd / tech.vddNominal();
    const double dyn_per_hz =
        n * tech.dynamicPowerNominal() * kappa * kappa / f1;

    // Fixed point on f: static power depends on temperature, which depends
    // on total power, which depends on f. Dynamic power is linear in f, so
    // each step solves the budget equality exactly for the current static
    // estimate.
    double f = f_cap;
    for (int it = 0; it < 60; ++it) {
        const PowerBreakdown pb = cmp_->evaluate({n, vdd, f});
        const double headroom = budget_w_ - pb.static_w;
        double f_budget = headroom <= 0.0 ? 0.0 : headroom / dyn_per_hz;
        const double f_next = std::clamp(f_budget, 0.0, f_cap);
        if (std::fabs(f_next - f) <= 1e-4 * tech.fNominal()) {
            f = f_next;
            break;
        }
        // Light damping keeps the leakage-temperature loop stable.
        f = 0.5 * f + 0.5 * f_next;
    }
    return f;
}

Scenario2Result
Scenario2::solve(int n, double eps_n) const
{
    if (n < 1 || n > cmp_->totalCores()) {
        util::fatal(util::strcatMsg("Scenario2: N = ", n, " outside [1, ",
                                    cmp_->totalCores(), "]"));
    }
    if (eps_n <= 0.0)
        util::fatal("Scenario2: eps_n must be positive");

    const tech::Technology& tech = cmp_->technology();
    const double f1 = tech.fNominal();

    Scenario2Result result;
    result.n = n;
    result.eps_n = eps_n;
    result.budget_w = budget_w_;

    const auto speedup_at = [&](double vdd) {
        return n * eps_n * frequencyAt(n, vdd) / f1;
    };
    const util::MaxResult best =
        util::maximizeScan(speedup_at, tech.vMin(), tech.vddNominal(), 24,
                           1e-4);

    result.vdd = best.x;
    result.freq = frequencyAt(n, result.vdd);
    result.speedup = n * eps_n * result.freq / f1;
    result.feasible = result.freq > 0.0;
    if (result.feasible) {
        result.power = cmp_->evaluate({n, result.vdd, result.freq});
        const double f_cap = std::min(
            tech.frequencyLaw().maxFrequency(result.vdd), f1);
        result.budget_bound = result.freq < f_cap - 1e-3 * f1;
    }
    return result;
}

} // namespace tlp::model
