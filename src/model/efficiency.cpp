#include "model/efficiency.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace tlp::model {

ConstantEfficiency::ConstantEfficiency(double value) : value_(value)
{
    if (value <= 0.0)
        util::fatal("ConstantEfficiency: value must be positive");
}

double
ConstantEfficiency::at(int n) const
{
    if (n < 1)
        util::fatal("EfficiencyCurve: N must be >= 1");
    return n == 1 ? 1.0 : value_;
}

AmdahlEfficiency::AmdahlEfficiency(double serial_fraction)
    : serial_fraction_(serial_fraction)
{
    if (serial_fraction < 0.0 || serial_fraction > 1.0)
        util::fatal("AmdahlEfficiency: serial fraction must be in [0, 1]");
}

double
AmdahlEfficiency::at(int n) const
{
    if (n < 1)
        util::fatal("EfficiencyCurve: N must be >= 1");
    const double s = serial_fraction_;
    return 1.0 / (n * s + (1.0 - s));
}

OverheadEfficiency::OverheadEfficiency(double sigma) : sigma_(sigma)
{
    if (sigma < 0.0)
        util::fatal("OverheadEfficiency: sigma must be non-negative");
}

double
OverheadEfficiency::at(int n) const
{
    if (n < 1)
        util::fatal("EfficiencyCurve: N must be >= 1");
    return 1.0 / (1.0 + sigma_ * (n - 1));
}

TabulatedEfficiency::TabulatedEfficiency(std::map<int, double> samples)
    : samples_(std::move(samples))
{
    if (samples_.empty() || samples_.begin()->first != 1)
        util::fatal("TabulatedEfficiency: samples must start at N = 1");
    for (const auto& [n, eps] : samples_) {
        if (eps <= 0.0) {
            util::fatal(util::strcatMsg(
                "TabulatedEfficiency: eps_n(", n, ") = ", eps,
                " must be positive"));
        }
    }
}

double
TabulatedEfficiency::at(int n) const
{
    if (n < 1)
        util::fatal("EfficiencyCurve: N must be >= 1");
    const auto it = samples_.find(n);
    if (it != samples_.end())
        return it->second;

    const auto upper = samples_.upper_bound(n);
    if (upper == samples_.begin())
        return samples_.begin()->second;
    if (upper == samples_.end())
        return samples_.rbegin()->second;
    const auto lower = std::prev(upper);

    // Geometric interpolation in N keeps interpolated efficiencies
    // positive and respects the roughly log-linear decay of measured
    // curves.
    const double ln = std::log(static_cast<double>(n));
    const double l0 = std::log(static_cast<double>(lower->first));
    const double l1 = std::log(static_cast<double>(upper->first));
    const double t = (ln - l0) / (l1 - l0);
    return lower->second *
        std::pow(upper->second / lower->second, t);
}

} // namespace tlp::model
