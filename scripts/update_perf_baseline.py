#!/usr/bin/env python3
"""Re-measure and rewrite the CI perf-guard ceilings.

Runs bench_sweep_throughput at the baseline's committed scale, reads the
serial counters from its JSON line, and rewrites bench/perf_baseline.json
with the measured values as the new ceilings. The counters are
deterministic (serial pass, fixed task order), so the measured value IS
the ceiling -- no headroom fudge is added.

Use this only when an intentional change (sweep grid, caching strategy,
thermal ladder, event taxonomy) shifts the counts, and explain the shift
in the commit message that updates the baseline.

Usage:
    scripts/update_perf_baseline.py [--build-dir build] [--dry-run]
"""

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "bench", "perf_baseline.json")

# JSON keys of bench_sweep_throughput's serial (deterministic) counters
# that the guard enforces; the baseline stores each as "max_<key>".
GUARDED_KEYS = (
    "serial_sim_calls",
    "serial_sim_events",
    "serial_raw_misses",
    "serial_thermal_fallback_solves",
    "serial_thermal_factorizations",
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    parser.add_argument("--dry-run", action="store_true",
                        help="print the new ceilings without rewriting "
                             "the baseline file")
    args = parser.parse_args()

    with open(BASELINE) as f:
        baseline = json.load(f)

    bench = os.path.join(REPO_ROOT, args.build_dir, "bench",
                         "bench_sweep_throughput")
    if not os.path.exists(bench):
        sys.exit(f"error: {bench} not built; run "
                 f"'cmake --build {args.build_dir} --target "
                 f"bench_sweep_throughput' first")

    env = dict(os.environ, TLPPM_SCALE=str(baseline["scale"]))
    print(f"running {bench} at TLPPM_SCALE={baseline['scale']} ...")
    out = subprocess.run([bench], env=env, check=True,
                         capture_output=True, text=True).stdout
    result = json.loads(out.strip().splitlines()[-1])

    changed = False
    for key in GUARDED_KEYS:
        if key not in result:
            sys.exit(f"error: bench output lacks '{key}'")
        old = baseline.get("max_" + key)
        new = result[key]
        marker = "" if old == new else f"  (was {old})"
        print(f"  max_{key} = {new}{marker}")
        if old != new:
            baseline["max_" + key] = new
            changed = True

    if not changed:
        print("baseline already matches the measured counters")
        return
    if args.dry_run:
        print("dry run: baseline file left untouched")
        return
    with open(BASELINE, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"rewrote {BASELINE}; commit it with an explanation of why "
          f"the counts legitimately moved")


if __name__ == "__main__":
    main()
