#!/usr/bin/env python3
"""Re-measure and rewrite the CI perf-guard ceilings.

Runs bench_sweep_throughput at the baseline's committed scale, reads the
serial counters from its JSON line, and rewrites bench/perf_baseline.json
with the measured values as the new ceilings. The counters are
deterministic (serial pass, fixed task order), so the measured value IS
the ceiling -- no headroom fudge is added.

Use this only when an intentional change (sweep grid, caching strategy,
thermal ladder, event taxonomy) shifts the counts, and explain the shift
in the commit message that updates the baseline.

Usage:
    scripts/update_perf_baseline.py [--build-dir build] [--dry-run]
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "bench", "perf_baseline.json")

# JSON keys of bench_sweep_throughput's serial (deterministic) counters
# that the guard enforces; the baseline stores each as "max_<key>".
GUARDED_KEYS = (
    "serial_sim_calls",
    "serial_sim_events",
    "serial_raw_misses",
    "serial_thermal_fallback_solves",
    "serial_thermal_factorizations",
)

# Service-leg ceilings: measured from a fresh tlppm_serve answering a
# repeated (already-stored) request against a throwaway store. Both are
# exact invariants -- a nonzero measurement is itself a regression, but
# the script records what it measured and leaves the judgment to review.
SERVICE_KEYS = {
    "store_table_misses": "max_store_misses_on_repeat",
    "store_quarantined": "max_quarantined_records",
}

# Raw-run store ceilings: measured from bench_sweep_throughput's
# cold/warm split against a scratch store (the bench runs its sweep
# once populating the store, then once priced from it). Both are exact
# invariants -- a warm pass that still simulates, or that misses the
# store, means the persistent memoization layer stopped covering the
# sweep's key set.
RAW_STORE_KEYS = {
    "store_warm_sim_calls": "max_warm_sim_calls",
    "store_warm_misses": "max_warm_store_misses",
}


def measure_service_repeat(build_dir):
    """Serve the same fig1 request twice against a scratch store and
    return the second (fresh) daemon's metrics: the repeat pass must be
    a pure store hit."""
    serve = os.path.join(REPO_ROOT, build_dir, "bench", "tlppm_serve")
    request = os.path.join(REPO_ROOT, build_dir, "bench",
                           "tlppm_request")
    for tool in (serve, request):
        if not os.path.exists(tool):
            sys.exit(f"error: {tool} not built; run 'cmake --build "
                     f"{build_dir} --target tlppm_serve tlppm_request' "
                     f"first")

    scratch = tempfile.mkdtemp(prefix="tlppm_baseline_store_")
    try:
        store = os.path.join(scratch, "store")
        metrics = os.path.join(scratch, "repeat_metrics.json")
        for rid in ("seed", "repeat"):
            subprocess.run([request, "--store", store, "--figure",
                            "fig1", "--id", rid, "--wait", "0",
                            "--quiet"], check=True)
            subprocess.run([serve, "--store", store, "--jobs", "1",
                            "--once", "--metrics", metrics], check=True,
                           capture_output=True)
        with open(metrics) as f:
            return json.load(f)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    parser.add_argument("--dry-run", action="store_true",
                        help="print the new ceilings without rewriting "
                             "the baseline file")
    args = parser.parse_args()

    with open(BASELINE) as f:
        baseline = json.load(f)

    bench = os.path.join(REPO_ROOT, args.build_dir, "bench",
                         "bench_sweep_throughput")
    if not os.path.exists(bench):
        sys.exit(f"error: {bench} not built; run "
                 f"'cmake --build {args.build_dir} --target "
                 f"bench_sweep_throughput' first")

    env = dict(os.environ, TLPPM_SCALE=str(baseline["scale"]))
    print(f"running {bench} at TLPPM_SCALE={baseline['scale']} ...")
    scratch_store = tempfile.mkdtemp(prefix="tlppm_baseline_rawstore_")
    try:
        out = subprocess.run(
            [bench, "--raw-store",
             os.path.join(scratch_store, "rawstore")],
            env=env, check=True, capture_output=True, text=True).stdout
    finally:
        shutil.rmtree(scratch_store, ignore_errors=True)
    result = json.loads(out.strip().splitlines()[-1])

    changed = False
    for key in GUARDED_KEYS:
        if key not in result:
            sys.exit(f"error: bench output lacks '{key}'")
        old = baseline.get("max_" + key)
        new = result[key]
        marker = "" if old == new else f"  (was {old})"
        print(f"  max_{key} = {new}{marker}")
        if old != new:
            baseline["max_" + key] = new
            changed = True

    # Work-stealing pool spread: informational only. The imbalance
    # ceiling (max_parallel_worker_imbalance) is a fixed judgment value
    # -- the measured ratio wobbles a few tenths run to run, and
    # recording a lucky 1.02 as the ceiling would make the guard flaky.
    imbalance = result.get("parallel_worker_imbalance")
    ceiling = baseline.get("max_parallel_worker_imbalance")
    if imbalance is not None:
        print(f"  parallel_worker_imbalance = {imbalance} (fixed ceiling "
              f"{ceiling}, not rewritten); parallel_steals = "
              f"{result.get('parallel_steals')} of "
              f"{result.get('parallel_pool_tasks')} pool tasks")
        if ceiling is not None and imbalance > ceiling:
            print("  WARNING: measured imbalance exceeds the committed "
                  "ceiling -- the pool is not spreading work; fix the "
                  "scheduler instead of raising the ceiling")

    # Warm raw-store pass: the same exact-invariant treatment as the
    # service ceilings. store_warm_identical is a hard sanity check --
    # a warm pass with different rows is a correctness bug, never a
    # baseline to record.
    if not result.get("store_warm_identical", False):
        sys.exit("error: warm raw-store rows differ from the serial "
                 "reference; fix the store before updating ceilings")
    for metric, ceiling_key in RAW_STORE_KEYS.items():
        if metric not in result:
            sys.exit(f"error: bench output lacks '{metric}'")
        old = baseline.get(ceiling_key)
        new = result[metric]
        marker = "" if old == new else f"  (was {old})"
        print(f"  {ceiling_key} = {new}{marker}")
        if new != 0:
            print(f"  WARNING: {ceiling_key} is an exact invariant; a "
                  f"nonzero measurement means the warm path regressed "
                  f"-- fix that instead of committing this")
        if old != new:
            baseline[ceiling_key] = new
            changed = True

    print("measuring service repeat-request ceilings ...")
    service_metrics = measure_service_repeat(args.build_dir)
    for metric, ceiling_key in SERVICE_KEYS.items():
        if metric not in service_metrics:
            sys.exit(f"error: service metrics lack '{metric}'")
        old = baseline.get(ceiling_key)
        new = service_metrics[metric]
        marker = "" if old == new else f"  (was {old})"
        print(f"  {ceiling_key} = {new}{marker}")
        if new != 0:
            print(f"  WARNING: {ceiling_key} is an exact invariant; a "
                  f"nonzero measurement means the store hit path "
                  f"regressed -- fix that instead of committing this")
        if old != new:
            baseline[ceiling_key] = new
            changed = True

    if not changed:
        print("baseline already matches the measured counters")
        return
    if args.dry_run:
        print("dry run: baseline file left untouched")
        return
    with open(BASELINE, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"rewrote {BASELINE}; commit it with an explanation of why "
          f"the counts legitimately moved")


if __name__ == "__main__":
    main()
