#!/usr/bin/env python3
"""Re-measure and rewrite the CI perf-guard ceilings.

Runs bench_sweep_throughput at the baseline's committed scale, reads the
serial counters from its JSON line, and rewrites bench/perf_baseline.json
with the measured values as the new ceilings. The counters are
deterministic (serial pass, fixed task order), so the measured value IS
the ceiling -- no headroom fudge is added.

Use this only when an intentional change (sweep grid, caching strategy,
thermal ladder, event taxonomy) shifts the counts, and explain the shift
in the commit message that updates the baseline.

Usage:
    scripts/update_perf_baseline.py [--build-dir build] [--dry-run]
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "bench", "perf_baseline.json")

# JSON keys of bench_sweep_throughput's serial (deterministic) counters
# that the guard enforces; the baseline stores each as "max_<key>".
GUARDED_KEYS = (
    "serial_sim_calls",
    "serial_sim_events",
    "serial_raw_misses",
    "serial_thermal_fallback_solves",
    "serial_thermal_factorizations",
)

# Service-leg ceilings: measured from a fresh tlppm_serve answering a
# repeated (already-stored) request against a throwaway store. Both are
# exact invariants -- a nonzero measurement is itself a regression, but
# the script records what it measured and leaves the judgment to review.
SERVICE_KEYS = {
    "store_table_misses": "max_store_misses_on_repeat",
    "store_quarantined": "max_quarantined_records",
}

# Raw-run store ceilings: measured from bench_sweep_throughput's
# cold/warm split against a scratch store (the bench runs its sweep
# once populating the store, then once priced from it). Both are exact
# invariants -- a warm pass that still simulates, or that misses the
# store, means the persistent memoization layer stopped covering the
# sweep's key set.
RAW_STORE_KEYS = {
    "store_warm_sim_calls": "max_warm_sim_calls",
    "store_warm_misses": "max_warm_store_misses",
}

# fig5_multiprog ceilings: the co-scheduling sweep pre-warms every grid
# point the DVFS arbitration can touch, so its serial simulation count
# is exact and job-count-invariant -- measured and rewritten like the
# GUARDED_KEYS.
FIG5_KEYS = {
    "sim_calls": "max_fig5_serial_sim_calls",
}


def measure_trace_replay(build_dir):
    """Dump FFT+FMM to sealed traces and replay them through fig3,
    returning the replay's metrics (trace_loads / trace_load_micros)."""
    tracegen = os.path.join(REPO_ROOT, build_dir, "bench",
                            "tlppm_tracegen")
    fig3 = os.path.join(REPO_ROOT, build_dir, "bench",
                        "fig3_scenario1_simulation")
    for tool in (tracegen, fig3):
        if not os.path.exists(tool):
            sys.exit(f"error: {tool} not built; run 'cmake --build "
                     f"{build_dir} --target tlppm_tracegen "
                     f"fig3_scenario1_simulation' first")
    with open(BASELINE) as f:
        scale = json.load(f)["scale"]
    env = dict(os.environ, TLPPM_SCALE=str(scale))
    scratch = tempfile.mkdtemp(prefix="tlppm_baseline_traces_")
    try:
        traces = os.path.join(scratch, "traces")
        subprocess.run([tracegen, "--out", traces, "--workloads",
                        "FFT,FMM", "--ns", "1,2,4,8,16"], env=env,
                       check=True, capture_output=True)
        metrics = os.path.join(scratch, "replay_metrics.json")
        subprocess.run(
            [fig3, "--jobs", "1", "--metrics", metrics, "--workloads",
             f"trace:{traces}/fft.trc,trace:{traces}/fmm.trc"],
            env=env, check=True, capture_output=True)
        with open(metrics) as f:
            return json.load(f)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def measure_fig5(build_dir):
    """Run the fig5_multiprog co-scheduling sweep serially and return
    its metrics (the arbitration's exact simulation count)."""
    fig5 = os.path.join(REPO_ROOT, build_dir, "bench", "fig5_multiprog")
    if not os.path.exists(fig5):
        sys.exit(f"error: {fig5} not built; run 'cmake --build "
                 f"{build_dir} --target fig5_multiprog' first")
    with open(BASELINE) as f:
        scale = json.load(f)["scale"]
    env = dict(os.environ, TLPPM_SCALE=str(scale))
    scratch = tempfile.mkdtemp(prefix="tlppm_baseline_fig5_")
    try:
        metrics = os.path.join(scratch, "fig5_metrics.json")
        subprocess.run([fig5, "--jobs", "1", "--metrics", metrics],
                       env=env, check=True, capture_output=True)
        with open(metrics) as f:
            return json.load(f)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def measure_service_repeat(build_dir):
    """Serve the same fig1 request twice against a scratch store and
    return the second (fresh) daemon's metrics: the repeat pass must be
    a pure store hit."""
    serve = os.path.join(REPO_ROOT, build_dir, "bench", "tlppm_serve")
    request = os.path.join(REPO_ROOT, build_dir, "bench",
                           "tlppm_request")
    for tool in (serve, request):
        if not os.path.exists(tool):
            sys.exit(f"error: {tool} not built; run 'cmake --build "
                     f"{build_dir} --target tlppm_serve tlppm_request' "
                     f"first")

    scratch = tempfile.mkdtemp(prefix="tlppm_baseline_store_")
    try:
        store = os.path.join(scratch, "store")
        metrics = os.path.join(scratch, "repeat_metrics.json")
        for rid in ("seed", "repeat"):
            subprocess.run([request, "--store", store, "--figure",
                            "fig1", "--id", rid, "--wait", "0",
                            "--quiet"], check=True)
            subprocess.run([serve, "--store", store, "--jobs", "1",
                            "--once", "--metrics", metrics], check=True,
                           capture_output=True)
        with open(metrics) as f:
            return json.load(f)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    parser.add_argument("--dry-run", action="store_true",
                        help="print the new ceilings without rewriting "
                             "the baseline file")
    args = parser.parse_args()

    with open(BASELINE) as f:
        baseline = json.load(f)

    bench = os.path.join(REPO_ROOT, args.build_dir, "bench",
                         "bench_sweep_throughput")
    if not os.path.exists(bench):
        sys.exit(f"error: {bench} not built; run "
                 f"'cmake --build {args.build_dir} --target "
                 f"bench_sweep_throughput' first")

    env = dict(os.environ, TLPPM_SCALE=str(baseline["scale"]))
    print(f"running {bench} at TLPPM_SCALE={baseline['scale']} ...")
    scratch_store = tempfile.mkdtemp(prefix="tlppm_baseline_rawstore_")
    try:
        out = subprocess.run(
            [bench, "--raw-store",
             os.path.join(scratch_store, "rawstore")],
            env=env, check=True, capture_output=True, text=True).stdout
    finally:
        shutil.rmtree(scratch_store, ignore_errors=True)
    result = json.loads(out.strip().splitlines()[-1])

    changed = False
    for key in GUARDED_KEYS:
        if key not in result:
            sys.exit(f"error: bench output lacks '{key}'")
        old = baseline.get("max_" + key)
        new = result[key]
        marker = "" if old == new else f"  (was {old})"
        print(f"  max_{key} = {new}{marker}")
        if old != new:
            baseline["max_" + key] = new
            changed = True

    # Work-stealing pool spread: informational only. The imbalance
    # ceiling (max_parallel_worker_imbalance) is a fixed judgment value
    # -- the measured ratio wobbles a few tenths run to run, and
    # recording a lucky 1.02 as the ceiling would make the guard flaky.
    imbalance = result.get("parallel_worker_imbalance")
    ceiling = baseline.get("max_parallel_worker_imbalance")
    if imbalance is not None:
        print(f"  parallel_worker_imbalance = {imbalance} (fixed ceiling "
              f"{ceiling}, not rewritten); parallel_steals = "
              f"{result.get('parallel_steals')} of "
              f"{result.get('parallel_pool_tasks')} pool tasks")
        if ceiling is not None and imbalance > ceiling:
            print("  WARNING: measured imbalance exceeds the committed "
                  "ceiling -- the pool is not spreading work; fix the "
                  "scheduler instead of raising the ceiling")

    # Warm raw-store pass: the same exact-invariant treatment as the
    # service ceilings. store_warm_identical is a hard sanity check --
    # a warm pass with different rows is a correctness bug, never a
    # baseline to record.
    if not result.get("store_warm_identical", False):
        sys.exit("error: warm raw-store rows differ from the serial "
                 "reference; fix the store before updating ceilings")
    for metric, ceiling_key in RAW_STORE_KEYS.items():
        if metric not in result:
            sys.exit(f"error: bench output lacks '{metric}'")
        old = baseline.get(ceiling_key)
        new = result[metric]
        marker = "" if old == new else f"  (was {old})"
        print(f"  {ceiling_key} = {new}{marker}")
        if new != 0:
            print(f"  WARNING: {ceiling_key} is an exact invariant; a "
                  f"nonzero measurement means the warm path regressed "
                  f"-- fix that instead of committing this")
        if old != new:
            baseline[ceiling_key] = new
            changed = True

    print("measuring fig5_multiprog serial simulation ceiling ...")
    fig5_metrics = measure_fig5(args.build_dir)
    for metric, ceiling_key in FIG5_KEYS.items():
        if metric not in fig5_metrics:
            sys.exit(f"error: fig5 metrics lack '{metric}'")
        old = baseline.get(ceiling_key)
        new = fig5_metrics[metric]
        marker = "" if old == new else f"  (was {old})"
        print(f"  {ceiling_key} = {new}{marker}")
        if old != new:
            baseline[ceiling_key] = new
            changed = True

    # Trace-loader accounting: informational only. max_trace_load_micros
    # is wall-clock, so (like the pool-imbalance ceiling) it is a fixed
    # judgment value with generous headroom -- recording a fast local
    # measurement as the ceiling would make the guard flaky on shared
    # runners.
    print("measuring trace replay loader accounting ...")
    replay_metrics = measure_trace_replay(args.build_dir)
    loads = replay_metrics.get("trace_loads")
    micros = replay_metrics.get("trace_load_micros")
    ceiling = baseline.get("max_trace_load_micros")
    print(f"  trace_load_micros = {micros} over {loads} trace load(s) "
          f"(fixed ceiling {ceiling}, not rewritten)")
    if loads is None or loads < 1:
        sys.exit("error: trace replay loaded no traces; the loader "
                 "accounting is broken")
    if ceiling is not None and micros > ceiling:
        print("  WARNING: measured trace load time exceeds the committed "
              "ceiling -- the loader has regressed badly (quadratic "
              "parse?); fix it instead of raising the ceiling")

    print("measuring service repeat-request ceilings ...")
    service_metrics = measure_service_repeat(args.build_dir)
    for metric, ceiling_key in SERVICE_KEYS.items():
        if metric not in service_metrics:
            sys.exit(f"error: service metrics lack '{metric}'")
        old = baseline.get(ceiling_key)
        new = service_metrics[metric]
        marker = "" if old == new else f"  (was {old})"
        print(f"  {ceiling_key} = {new}{marker}")
        if new != 0:
            print(f"  WARNING: {ceiling_key} is an exact invariant; a "
                  f"nonzero measurement means the store hit path "
                  f"regressed -- fix that instead of committing this")
        if old != new:
            baseline[ceiling_key] = new
            changed = True

    if not changed:
        print("baseline already matches the measured counters")
        return
    if args.dry_run:
        print("dry run: baseline file left untouched")
        return
    with open(BASELINE, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"rewrote {BASELINE}; commit it with an explanation of why "
          f"the counts legitimately moved")


if __name__ == "__main__":
    main()
