/**
 * @file
 * Ablations over the analytical model's design choices (DESIGN.md):
 *
 *  1. thermal feedback on/off — how much of Scenario I's power saving
 *     comes from the temperature drop feeding back into leakage;
 *  2. voltage-floor sensitivity — where Figure 2's peak lands as the
 *     noise-margin floor moves;
 *  3. sink share — how the heat-sink fraction of the package resistance
 *     shifts the Scenario II speedup curve;
 *  4. discrete vs continuous DVFS — the cost of a shipping-part V/f
 *     table relative to the continuous alpha-power law.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "model/scenario1.hpp"
#include "model/scenario2.hpp"
#include "tech/vf_table.hpp"
#include "util/table.hpp"

namespace {

using namespace tlp;

void
thermalFeedbackAblation()
{
    util::Table table(
        "Ablation 1: Scenario I normalized power with/without "
        "temperature-leakage feedback (65nm, eps_n = 0.9)",
        {"N", "feedback on", "feedback off (T fixed at 100C)",
         "saving from feedback [%]"});
    const tech::Technology tech = tech::tech65nm();
    const model::AnalyticCmp with(tech, 32, /*thermal_feedback=*/true);
    const model::AnalyticCmp without(tech, 32, /*thermal_feedback=*/false);
    const model::Scenario1 s_with(with);
    const model::Scenario1 s_without(without);
    for (int n : {2, 4, 8, 16, 32}) {
        const auto a = s_with.solve(n, 0.9);
        const auto b = s_without.solve(n, 0.9);
        table.addRow(
            {util::Table::num(n),
             util::Table::num(a.normalized_power, 3),
             util::Table::num(b.normalized_power, 3),
             util::Table::num(100.0 * (b.normalized_power -
                                       a.normalized_power) /
                                  b.normalized_power,
                              1)});
    }
    table.print(std::cout);
}

void
voltageFloorAblation()
{
    util::Table table(
        "Ablation 2: Figure 2 peak vs noise-margin floor (65nm, "
        "eps_n = 1)",
        {"v_min / Vth", "peak speedup", "peak N", "speedup at N=32"});
    for (double mult : {1.5, 2.0, 2.5, 3.0}) {
        tech::Technology::Params p = tech::tech65nm().params();
        p.v_min = mult * p.vth;
        const tech::Technology tech{std::move(p)};
        const model::AnalyticCmp cmp(tech, 32);
        const model::Scenario2 scenario(cmp);
        double peak = 0.0, at32 = 0.0;
        int argmax = 1;
        for (int n = 1; n <= 32; ++n) {
            const auto r = scenario.solve(n, 1.0);
            if (r.speedup > peak) {
                peak = r.speedup;
                argmax = n;
            }
            if (n == 32)
                at32 = r.speedup;
        }
        table.addRow({util::Table::num(mult, 2),
                      util::Table::num(peak, 2), util::Table::num(argmax),
                      util::Table::num(at32, 2)});
    }
    table.print(std::cout);
}

void
sinkShareAblation()
{
    util::Table table(
        "Ablation 3: Figure 2 peak vs heat-sink share of the package "
        "resistance (65nm, eps_n = 1)",
        {"sink fraction", "peak speedup", "peak N", "speedup at N=32"});
    for (double sink : {0.3, 0.45, 0.6, 0.75}) {
        const model::AnalyticCmp cmp(tech::tech65nm(), 32, true, sink);
        const model::Scenario2 scenario(cmp);
        double peak = 0.0, at32 = 0.0;
        int argmax = 1;
        for (int n = 1; n <= 32; ++n) {
            const auto r = scenario.solve(n, 1.0);
            if (r.speedup > peak) {
                peak = r.speedup;
                argmax = n;
            }
            if (n == 32)
                at32 = r.speedup;
        }
        table.addRow({util::Table::num(sink, 2),
                      util::Table::num(peak, 2), util::Table::num(argmax),
                      util::Table::num(at32, 2)});
    }
    table.print(std::cout);
}

void
discreteDvfsAblation()
{
    // The analytical model scales V continuously along the alpha-power
    // curve (Eq. 1); the experimental testbed extrapolates from a
    // shipping part's discrete table (§3.1). Compare the Scenario I
    // power that each voltage source yields at the same Eq. 7 frequency.
    util::Table table(
        "Ablation 4: continuous (Eq. 1) vs table-derived (Pentium-M-"
        "like) supply voltage, Scenario I, 65nm, eps_n = 0.9",
        {"N", "f [GHz]", "V continuous", "V table", "P/P1 continuous",
         "P/P1 table"});
    const tech::Technology tech = tech::tech65nm();
    const tech::VfTable vf = tech::pentiumMLike(tech);
    const model::AnalyticCmp cmp(tech, 32);
    const model::Scenario1 scenario(cmp);
    for (int n : {2, 4, 8, 16}) {
        const auto cont = scenario.solve(n, 0.9);
        if (!cont.feasible)
            continue;
        const double v_table =
            std::clamp(vf.voltageFor(cont.freq), tech.vMin(),
                       tech.vddNominal());
        const auto table_pb =
            cmp.evaluate({n, v_table, cont.freq});
        table.addRow(
            {util::Table::num(n), util::Table::num(cont.freq / 1e9, 2),
             util::Table::num(cont.vdd, 3), util::Table::num(v_table, 3),
             util::Table::num(cont.normalized_power, 3),
             util::Table::num(table_pb.total_w / cmp.singleCorePower(),
                              3)});
    }
    table.print(std::cout);
    std::cout << "A shipping-part table is conservative (higher V at a "
                 "given f), so the experimental testbed saves somewhat "
                 "less power than the continuous model predicts.\n\n";
}

} // namespace

int
main()
{
    tlppm_bench::banner("Analytical-model ablations");
    thermalFeedbackAblation();
    voltageFloorAblation();
    sinkShareAblation();
    discreteDvfsAblation();
    return 0;
}
