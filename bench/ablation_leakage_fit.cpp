/**
 * @file
 * The leakage curve-fit validation (§2.1 of the paper): the paper fits
 * Eq. 3 against HSpice inverter-chain simulations and reports max errors
 * within 9.5% (130 nm) and 7.5% (65 nm), with 0.25%/0.05% average error.
 * We regress the same functional form against the BSIM-flavoured
 * reference model and report the same statistics, plus a grid-density
 * sensitivity sweep.
 */

#include <iostream>

#include "bench_util.hpp"
#include "tech/technology.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace tlp;
    tlppm_bench::banner("Leakage curve-fit validation (paper: section "
                        "2.1 HSpice comparison)");

    util::Table table("Curve fit vs reference leakage model",
                      {"Node", "grid", "max error [%]", "avg error [%]",
                       "mu", "b1", "b2", "b3"});

    for (const auto& tech : {tech::tech130nm(), tech::tech65nm()}) {
        for (int grid : {10, 25, 50}) {
            const auto report = tech::fitLeakageScale(
                tech.leakageReference(), tech.vMin(), tech.vddNominal(),
                40.0, 110.0, grid);
            table.addRow(
                {tech.name(), util::Table::num(grid),
                 util::Table::num(100.0 * report.max_rel_error, 2),
                 util::Table::num(100.0 * report.avg_rel_error, 3),
                 util::Table::num(report.fit.mu, 3),
                 util::Table::num(report.fit.b1, 3),
                 util::Table::num(report.fit.b2, 1),
                 util::Table::num(report.fit.b3, 1)});
        }
    }
    table.print(std::cout);
    std::cout << "Paper bounds: max error within 9.5% (130nm) / 7.5% "
                 "(65nm); average 0.25% / 0.05%.\n";
    return 0;
}
