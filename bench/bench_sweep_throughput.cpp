/**
 * @file
 * Sweep-engine throughput: times the full Scenario I sweep over the
 * twelve-application suite serially (jobs = 1) and in parallel (--jobs N
 * / TLPPM_JOBS / hardware concurrency), verifies the two row sets are
 * identical field by field, and emits one machine-readable JSON line so
 * CI and scripts can track the speedup.
 *
 * With --raw-store DIR (or TLPPM_RAW_STORE) it additionally measures the
 * persistent-store cold-vs-warm split: one pass populating the store
 * from scratch, then one pass priced entirely from it. The JSON line
 * gains the two wall clocks, the warm pass's hit rate and simulation
 * count (0 when the store works), and the store load time. Point the
 * flag at a fresh directory for an honest cold number.
 *
 * Defaults to a small problem scale (0.08) so a run takes seconds;
 * override with TLPPM_SCALE.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "runner/sweep_runner.hpp"

namespace {

using namespace tlp;

bool
sameMeasurement(const runner::Measurement& a, const runner::Measurement& b)
{
    return a.cycles == b.cycles && a.seconds == b.seconds &&
           a.freq_hz == b.freq_hz && a.vdd == b.vdd &&
           a.dynamic_w == b.dynamic_w && a.static_w == b.static_w &&
           a.total_w == b.total_w &&
           a.avg_core_temp_c == b.avg_core_temp_c &&
           a.core_power_density_w_m2 == b.core_power_density_w_m2 &&
           a.instructions == b.instructions && a.runaway == b.runaway;
}

bool
sameRows(const std::vector<std::vector<runner::Scenario1Row>>& a,
         const std::vector<std::vector<runner::Scenario1Row>>& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].size() != b[i].size())
            return false;
        for (std::size_t j = 0; j < a[i].size(); ++j) {
            const runner::Scenario1Row& x = a[i][j];
            const runner::Scenario1Row& y = b[i][j];
            if (x.n != y.n || x.eps_n != y.eps_n ||
                x.freq_hz != y.freq_hz || x.vdd != y.vdd ||
                x.actual_speedup != y.actual_speedup ||
                x.normalized_power != y.normalized_power ||
                x.normalized_density != y.normalized_density ||
                x.avg_temp_c != y.avg_temp_c || x.failed != y.failed ||
                !sameMeasurement(x.measurement, y.measurement))
                return false;
        }
    }
    return true;
}

/** Tolerant scan for --raw-store DIR; falls back to TLPPM_RAW_STORE. */
std::string
rawStoreFromArgs(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--raw-store" && i + 1 < argc)
            return argv[i + 1];
        if (arg.rfind("--raw-store=", 0) == 0)
            return arg.substr(12);
    }
    const char* env = std::getenv("TLPPM_RAW_STORE");
    return env != nullptr ? env : "";
}

} // namespace

int
main(int argc, char** argv)
{
    // Small default scale so a run takes seconds; TLPPM_SCALE overrides.
    const double scale = tlppm_bench::workloadScale(0.08);
    int jobs = tlppm_bench::jobsFromArgsOrEnv(argc, argv);
    if (jobs <= 0)
        jobs = static_cast<int>(util::ThreadPool::defaultJobs());

    const std::vector<int> ns = {1, 2, 4, 8, 16};
    const auto& suite = workloads::suite();
    std::vector<const workloads::WorkloadInfo*> apps;
    for (const auto& info : suite)
        apps.push_back(&info);

    using clock = std::chrono::steady_clock;
    const auto seconds_since = [](clock::time_point start) {
        return std::chrono::duration<double>(clock::now() - start).count();
    };

    std::cerr << "[sweep_throughput] scale " << scale << ", " << apps.size()
              << " apps, serial pass...\n";
    runner::SweepRunner::Options serial_opts;
    serial_opts.jobs = 1;
    serial_opts.scale = scale;
    runner::SweepRunner serial(serial_opts);
    const auto t_serial = clock::now();
    const auto serial_rows = serial.scenario1Sweep(apps, ns);
    const double serial_s = seconds_since(t_serial);

    std::cerr << "[sweep_throughput] parallel pass on " << jobs
              << " worker(s)...\n";
    runner::SweepRunner::Options par_opts;
    par_opts.jobs = jobs;
    par_opts.scale = scale;
    runner::SweepRunner parallel(par_opts);
    const auto t_par = clock::now();
    const auto parallel_rows = parallel.scenario1Sweep(apps, ns);
    const double parallel_s = seconds_since(t_par);

    const bool identical = sameRows(serial_rows, parallel_rows);

    // Optional persistent-store cold-vs-warm split: populate the store
    // in one pass, then price the identical sweep from it in a second.
    const std::string raw_store = rawStoreFromArgs(argc, argv);
    const bool store_mode = !raw_store.empty();
    double store_cold_s = 0.0;
    double store_warm_s = 0.0;
    bool store_warm_identical = true;
    runner::SweepReport warm_rep;
    if (store_mode) {
        std::cerr << "[sweep_throughput] cold store pass into '"
                  << raw_store << "'...\n";
        runner::SweepRunner::Options store_opts;
        store_opts.jobs = jobs;
        store_opts.scale = scale;
        store_opts.raw_store = raw_store;
        {
            runner::SweepRunner cold(store_opts);
            const auto t_cold = clock::now();
            cold.scenario1Sweep(apps, ns);
            store_cold_s = seconds_since(t_cold);
        }
        std::cerr << "[sweep_throughput] warm store pass...\n";
        runner::SweepRunner warm(store_opts);
        const auto t_warm = clock::now();
        const auto warm_rows = warm.scenario1Sweep(apps, ns);
        store_warm_s = seconds_since(t_warm);
        warm_rep = warm.lastReport();
        store_warm_identical = sameRows(serial_rows, warm_rows);
    }

    // Event-queue pressure of one representative simulation, for tracking
    // the heap-reservation hot path.
    const sim::Cmp cmp{sim::CmpConfig{}};
    const sim::RunResult probe =
        cmp.run(apps.front()->make(16, scale),
                serial.experiment().technology().fNominal());
    const std::uint64_t high_water = probe.queue_high_water;

    // serial_* counters are deterministic (one worker, fixed task order)
    // and are what the CI perf guard compares against its committed
    // baseline; the parallel counters can vary by a few units with worker
    // interleaving (e.g. which workers lazily calibrate an Experiment).
    const runner::SweepReport& serial_rep = serial.lastReport();
    const runner::SweepReport& par_rep = parallel.lastReport();

    // Per-worker load balance of the parallel pass: max over workers of
    // executed tasks divided by the even-split mean. 1.0 is a perfect
    // spread; the CI ceiling catches a steal path that stops spreading
    // work (everything piling onto one deque).
    double worker_imbalance = 1.0;
    if (const util::ThreadPool* pool = parallel.pool()) {
        std::uint64_t total = 0;
        std::uint64_t max_one = 0;
        for (unsigned w = 0; w < pool->size(); ++w) {
            const std::uint64_t n = pool->workerExecuted(w);
            total += n;
            max_one = std::max(max_one, n);
        }
        if (total > 0)
            worker_imbalance = static_cast<double>(max_one) *
                               static_cast<double>(pool->size()) /
                               static_cast<double>(total);
    }
    std::cout << "{\"bench\":\"sweep_throughput\""
              << ",\"scale\":" << scale
              << ",\"apps\":" << apps.size()
              << ",\"jobs\":" << jobs
              << ",\"serial_s\":" << serial_s
              << ",\"parallel_s\":" << parallel_s
              << ",\"speedup\":"
              << (parallel_s > 0.0 ? serial_s / parallel_s : 0.0)
              << ",\"identical\":" << (identical ? "true" : "false")
              << ",\"serial_sim_calls\":" << serial_rep.sim_calls
              << ",\"serial_sim_events\":" << serial_rep.sim_events
              << ",\"events_per_sec\":"
              << (serial_s > 0.0
                      ? static_cast<double>(serial_rep.sim_events) / serial_s
                      : 0.0)
              << ",\"serial_price_calls\":" << serial_rep.price_calls
              << ",\"serial_raw_misses\":" << serial_rep.raw_misses
              << ",\"serial_thermal_fallback_solves\":"
              << serial_rep.thermal_fallback_solves
              << ",\"serial_thermal_solves\":" << serial_rep.thermal_solves
              << ",\"serial_thermal_solve_passes\":"
              << serial_rep.thermal_solve_passes
              << ",\"serial_thermal_factorizations\":"
              << serial_rep.thermal_factorizations
              << ",\"serial_thermal_max_batch_rhs\":"
              << serial_rep.thermal_max_batch_rhs
              << ",\"sim_calls\":" << par_rep.sim_calls
              << ",\"price_calls\":" << par_rep.price_calls
              << ",\"raw_hits\":" << parallel.rawCache().hits()
              << ",\"raw_misses\":" << parallel.rawCache().misses()
              << ",\"cache_hits\":" << parallel.cache().hits()
              << ",\"cache_misses\":" << parallel.cache().misses()
              << ",\"parallel_pool_tasks\":" << par_rep.pool_tasks
              << ",\"parallel_steals\":" << par_rep.pool_steals
              << ",\"parallel_failed_steal_sweeps\":"
              << par_rep.pool_failed_steal_sweeps
              << ",\"parallel_workers_pinned\":" << par_rep.pool_workers_pinned
              << ",\"parallel_worker_imbalance\":" << worker_imbalance
              << ",\"parallel_sched_expensive\":" << par_rep.sched_expensive
              << ",\"parallel_sched_cheap\":" << par_rep.sched_cheap
              << ",\"store_attached\":" << (store_mode ? 1 : 0)
              << ",\"store_cold_s\":" << store_cold_s
              << ",\"store_warm_s\":" << store_warm_s
              << ",\"store_warm_speedup\":"
              << (store_warm_s > 0.0 ? store_cold_s / store_warm_s : 0.0)
              << ",\"store_warm_sim_calls\":" << warm_rep.sim_calls
              << ",\"store_warm_hits\":" << warm_rep.store_hits
              << ",\"store_warm_misses\":" << warm_rep.store_misses
              << ",\"store_warm_hit_rate\":"
              << (warm_rep.store_hits + warm_rep.store_misses > 0
                      ? static_cast<double>(warm_rep.store_hits) /
                          static_cast<double>(warm_rep.store_hits +
                                              warm_rep.store_misses)
                      : 0.0)
              << ",\"store_warm_loaded\":" << warm_rep.store_loaded
              << ",\"store_load_micros\":" << warm_rep.store_load_micros
              << ",\"store_warm_identical\":"
              << (store_warm_identical ? "true" : "false")
              << ",\"queue_high_water\":" << high_water << "}\n";

    if (!identical) {
        std::cerr << "[sweep_throughput] FAIL: parallel rows differ from "
                     "serial rows\n";
        return 1;
    }
    if (!store_warm_identical) {
        std::cerr << "[sweep_throughput] FAIL: warm-store rows differ "
                     "from serial rows\n";
        return 1;
    }
    return 0;
}
