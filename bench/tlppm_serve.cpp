/**
 * @file
 * tlppm_serve — the sweep-as-a-service daemon.
 *
 * Opens (or creates) a crash-safe result store, then pumps its request
 * queue: clients drop `<id>.req` files into `<store>/queue/` (see
 * tlppm_request) and collect `<store>/results/<id>.resp`. Repeated
 * requests are served from the store without simulating; a kill -9 at
 * any instant loses at most the unfinished points of the in-flight
 * request — restart the daemon and re-request to get the identical
 * answer from the journal.
 *
 * Service metrics are rewritten atomically after every poll, so even an
 * abruptly killed daemon leaves a consistent snapshot behind.
 */

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "runner/fault_injection.hpp"
#include "service/result_store.hpp"
#include "service/sweep_service.hpp"
#include "util/fs.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"
#include "util/trace.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

[[noreturn]] void
usage(const std::string& what)
{
    std::cerr << "error: " << what << "\n"
              << "usage: tlppm_serve --store DIR [--jobs N] [--once]\n"
              << "  [--poll-period S] [--max-queue N] [--max-points N]\n"
              << "  [--deadline S] [--point-timeout S] [--max-retries N]\n"
              << "  [--backoff S] [--flush-every N] [--metrics PATH]\n"
              << "  [--raw-store DIR] [--compact] [--cache-stats]\n"
              << "  [--progress]\n";
    std::exit(2);
}

struct ServeCli
{
    std::string store;
    std::string metrics; ///< "" -> <store>/service_metrics.json
    bool once = false;
    bool compact = false;
    double poll_period_s = 0.2;
    tlp::service::SweepService::Options service;
};

ServeCli
parseCli(int argc, char** argv)
{
    using tlp::util::parseInt;
    using tlp::util::parseNumber;
    ServeCli cli;
    for (int i = 1; i < argc; ++i) {
        const std::string name = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("flag '" + name + "' needs a value");
            return argv[++i];
        };
        auto number = [&](double lo, double hi) {
            const auto v = parseNumber(value(), name.c_str(), lo, hi);
            if (!v)
                usage(v.error().describe());
            return v.value();
        };
        auto integer = [&](long lo, long hi) {
            const auto v = parseInt(value(), name.c_str(), lo, hi);
            if (!v)
                usage(v.error().describe());
            return v.value();
        };
        if (name == "--store")
            cli.store = value();
        else if (name == "--metrics")
            cli.metrics = value();
        else if (name == "--raw-store")
            cli.service.raw_store = value();
        else if (name == "--once")
            cli.once = true;
        else if (name == "--compact")
            cli.compact = true;
        else if (name == "--poll-period")
            cli.poll_period_s = number(0.0, 3600.0);
        else if (name == "--jobs")
            cli.service.jobs = static_cast<int>(integer(1, 4096));
        else if (name == "--max-queue")
            cli.service.max_queue =
                static_cast<std::size_t>(integer(1, 1000000));
        else if (name == "--max-points")
            cli.service.max_points =
                static_cast<std::uint64_t>(integer(0, 1000000000));
        else if (name == "--deadline")
            cli.service.deadline_s = number(0.0, 86400.0);
        else if (name == "--point-timeout")
            cli.service.point_timeout_s = number(0.0, 86400.0);
        else if (name == "--max-retries")
            cli.service.max_retries = static_cast<int>(integer(0, 100));
        else if (name == "--backoff")
            cli.service.backoff_s = number(0.0, 3600.0);
        else if (name == "--flush-every")
            cli.service.journal_flush_every =
                static_cast<int>(integer(1, 1000000));
        else if (name == "--cache-stats")
            cli.service.cache_stats = true;
        else if (name == "--progress")
            cli.service.progress = true;
        else
            usage("unknown argument '" + name + "'");
    }
    if (cli.store.empty())
        usage("--store DIR is required");
    if (cli.metrics.empty())
        cli.metrics = cli.store + "/service_metrics.json";
    if (cli.service.raw_store.empty()) {
        const char* env = std::getenv("TLPPM_RAW_STORE");
        if (env != nullptr)
            cli.service.raw_store = env;
    }
    return cli;
}

} // namespace

int
main(int argc, char** argv)
{
    const ServeCli cli = parseCli(argc, argv);
    tlp::util::Tracer::instance().enableFromEnv();
    tlp::runner::StoreFaultInjector::instance().installFromEnv();

    auto store = tlp::service::ResultStore::open(cli.store);
    if (!store) {
        std::cerr << "tlppm_serve: " << store.error().describe() << "\n";
        // A held lock means another daemon is live — a distinct exit
        // code so wrappers can tell "busy" from "broken".
        return store.error().code == tlp::util::ErrorCode::Overloaded
            ? 3
            : 1;
    }
    tlp::service::SweepService service(std::move(store.value()),
                                       cli.service);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::cerr << "tlppm_serve: store '" << cli.store << "' generation "
              << service.store().generation() << ", polling every "
              << cli.poll_period_s << " s"
              << (cli.once ? " (once: drain and exit)" : "") << "\n";

    if (cli.compact) {
        try {
            auto compacted = service.store().compact();
            if (!compacted) {
                std::cerr << "tlppm_serve: compaction failed: "
                          << compacted.error().describe() << "\n";
                return 1;
            }
            std::cerr << "tlppm_serve: compacted to generation "
                      << compacted.value().generation << " ("
                      << compacted.value().kept << " records kept)\n";
        } catch (const tlp::runner::FaultKillError& kill) {
            // The injected mid-compaction kill: die abruptly, leaving
            // the half-published state for the next open() to recover.
            std::cerr << "tlppm_serve: " << kill.what() << "\n";
            return 70;
        }
        // Maintenance extends to the raw-run store: remove orphaned
        // generations and *.tmp.* droppings left by killed writers.
        if (const std::size_t swept = service.sweepRawStore(); swept > 0) {
            std::cerr << "tlppm_serve: raw store '"
                      << cli.service.raw_store << "': swept " << swept
                      << " orphaned file(s)\n";
        }
    }

    while (g_stop == 0) {
        auto answered = service.pollOnce();
        if (!answered) {
            std::cerr << "tlppm_serve: poll failed: "
                      << answered.error().describe() << "\n";
            return 1;
        }
        // Rewritten atomically every poll: a kill -9 still leaves the
        // last consistent snapshot on disk.
        if (auto written = tlp::util::atomicWriteFile(
                cli.metrics, service.metricsJson());
            !written) {
            tlp::util::warn("tlppm_serve: metrics write failed: " +
                            written.error().describe());
        }
        if (cli.once && answered.value() == 0)
            break;
        if (answered.value() == 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(cli.poll_period_s));
        }
    }

    const tlp::service::ServiceStats stats = service.stats();
    std::cerr << "tlppm_serve: exiting; " << stats.requests
              << " request(s) answered (" << stats.served_ok << " ok, "
              << stats.from_store << " from store, " << stats.shed
              << " shed, " << stats.failed << " failed, " << stats.invalid
              << " invalid)\n";
    if (tlp::util::Tracer::instance().enabled()) {
        tlp::util::Tracer::instance().disable();
        tlp::util::Tracer::instance().writeFile();
    }
    return 0;
}
