/**
 * @file
 * Regenerates Table 1: the simulated CMP configuration, cross-checked
 * against the CactiLite area/latency estimates (the paper sizes its die
 * with CACTI: 244.5 mm^2 at 65 nm for 16 cores plus the 4 MB L2).
 */

#include <iostream>

#include "bench_util.hpp"
#include "power/chip_power.hpp"
#include "sim/config.hpp"
#include "tech/technology.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int
main()
{
    using namespace tlp;
    tlppm_bench::banner("Table 1 -- CMP configuration");

    const sim::CmpConfig config;
    const tech::Technology tech = tech::tech65nm();
    power::CmpGeometry geometry;
    geometry.n_cores = config.n_cores;
    geometry.l1i = {config.l1_size_bytes, config.l1_line_bytes,
                    config.l1_assoc, 1};
    geometry.l1d = {config.l1_size_bytes, config.l1_line_bytes,
                    config.l1_assoc, 2};
    geometry.l2 = {config.l2_size_bytes, config.l2_line_bytes,
                   config.l2_assoc, 1};
    const power::ChipPowerModel power(tech, geometry);

    util::Table table("Table 1: the modeled CMP", {"Parameter", "Value"});
    table.addRow({"CMP size", std::to_string(config.n_cores) + "-way"});
    table.addRow({"Processor core", "Alpha 21264-like (4-wide)"});
    table.addRow({"Process technology", tech.name()});
    table.addRow({"Nominal frequency",
                  util::Table::num(tech.fNominal() / 1e9, 1) + " GHz"});
    table.addRow({"Nominal Vdd",
                  util::Table::num(tech.vddNominal(), 2) + " V"});
    table.addRow({"Vth", util::Table::num(tech.vth(), 2) + " V"});
    table.addRow({"Ambient temperature", "45 C"});
    table.addRow({"Die size (CactiLite estimate)",
                  util::Table::num(power.chipArea() / util::mm2(1.0), 1) +
                      " mm^2 (paper: 244.5 mm^2)"});
    table.addRow({"L1 I-, D-cache",
                  "64KB, 64B line, 2-way, " +
                      std::to_string(config.l1_hit_cycles) + "-cycle RT"});
    table.addRow({"Unified L2",
                  "shared on chip, 4MB, 128B line, 8-way, " +
                      std::to_string(config.l2_rt_cycles) + "-cycle RT"});
    table.addRow({"Memory",
                  util::Table::num(config.memory_rt_ns, 0) + " ns RT (" +
                      std::to_string(config.memoryCycles(
                          tech.fNominal())) +
                      " cycles at nominal f)"});
    table.print(std::cout);

    const auto l1 = power.cacti().estimate(geometry.l1d);
    const auto l2 = power.cacti().estimate(geometry.l2);
    util::Table arrays("CactiLite array estimates",
                       {"Array", "read energy [nJ]", "area [mm^2]",
                        "access time [ns]"});
    arrays.addRow({"L1 (64KB/64B/2w)",
                   util::Table::num(l1.read_energy_j * 1e9, 3),
                   util::Table::num(l1.area_m2 / util::mm2(1.0), 2),
                   util::Table::num(l1.access_time_s * 1e9, 2)});
    arrays.addRow({"L2 (4MB/128B/8w)",
                   util::Table::num(l2.read_energy_j * 1e9, 3),
                   util::Table::num(l2.area_m2 / util::mm2(1.0), 2),
                   util::Table::num(l2.access_time_s * 1e9, 2)});
    arrays.print(std::cout);
    return 0;
}
