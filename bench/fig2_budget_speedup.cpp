/**
 * @file
 * Regenerates Figure 2: speedup of N-core configurations (N = 1..32)
 * under a power budget equal to the single-core full-throttle power, for
 * an application with perfect nominal parallel efficiency (eps_n = 1), on
 * the 130 nm and 65 nm nodes (Scenario II of the analytical model).
 */

#include <iostream>

#include "bench_util.hpp"
#include "model/scenario2.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace tlp;
    tlppm_bench::banner("Figure 2 -- Scenario II speedup under a fixed "
                        "power budget (analytical model)");

    const tech::Technology nodes[] = {tech::tech130nm(),
                                      tech::tech65nm()};
    const model::AnalyticCmp cmp130(nodes[0], 32);
    const model::AnalyticCmp cmp65(nodes[1], 32);
    const model::Scenario2 s130(cmp130);
    const model::Scenario2 s65(cmp65);

    util::Table table(
        "Figure 2: speedup vs cores, eps_n = 1, budget = P1",
        {"N", "130nm speedup", "130nm V", "130nm f[GHz]", "65nm speedup",
         "65nm V", "65nm f[GHz]"});

    double peak130 = 0.0, peak65 = 0.0;
    int argmax130 = 1, argmax65 = 1;
    for (int n = 1; n <= 32; ++n) {
        const auto a = s130.solve(n, 1.0);
        const auto b = s65.solve(n, 1.0);
        if (a.speedup > peak130) {
            peak130 = a.speedup;
            argmax130 = n;
        }
        if (b.speedup > peak65) {
            peak65 = b.speedup;
            argmax65 = n;
        }
        table.addRow({util::Table::num(n), util::Table::num(a.speedup, 3),
                      util::Table::num(a.vdd, 3),
                      util::Table::num(a.freq / 1e9, 3),
                      util::Table::num(b.speedup, 3),
                      util::Table::num(b.vdd, 3),
                      util::Table::num(b.freq / 1e9, 3)});
    }
    table.print(std::cout);

    std::cout << "Measured peaks: 130nm " << peak130 << "x at N="
              << argmax130 << "; 65nm " << peak65 << "x at N=" << argmax65
              << "\n";
    std::cout << "Expected shape (paper): maximum speedup only a little "
                 "over 4, on 130nm; the 65nm curve lies below 130nm and "
                 "degrades faster beyond its peak (higher static power "
                 "share); both technologies decline well before N=32 "
                 "despite eps_n = 1.\n";
    return 0;
}
