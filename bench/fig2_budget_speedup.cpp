/**
 * @file
 * Regenerates Figure 2: speedup of N-core configurations (N = 1..32)
 * under a power budget equal to the single-core full-throttle power, for
 * an application with perfect nominal parallel efficiency (eps_n = 1), on
 * the 130 nm and 65 nm nodes (Scenario II of the analytical model).
 */

#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "model/scenario2.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int
main(int argc, char** argv)
{
    using namespace tlp;
    tlppm_bench::banner("Figure 2 -- Scenario II speedup under a fixed "
                        "power budget (analytical model)");
    const tlppm_bench::SweepCliOptions cli =
        tlppm_bench::parseSweepCli(argc, argv, /*sim_flags=*/false);
    tlppm_bench::setupTrace(cli);

    const tech::Technology nodes[] = {tech::tech130nm(),
                                      tech::tech65nm()};
    const model::AnalyticCmp cmp130(nodes[0], 32);
    const model::AnalyticCmp cmp65(nodes[1], 32);
    const model::Scenario2 s130(cmp130);
    const model::Scenario2 s65(cmp65);

    util::Table table(
        "Figure 2: speedup vs cores, eps_n = 1, budget = P1",
        {"N", "130nm speedup", "130nm V", "130nm f[GHz]", "65nm speedup",
         "65nm V", "65nm f[GHz]"});

    // Both per-N solves are independent; fan them across the pool and
    // fold the table/peak scan serially in N order afterwards.
    constexpr int kMaxN = 32;
    std::vector<model::Scenario2Result> res130(kMaxN);
    std::vector<model::Scenario2Result> res65(kMaxN);
    std::vector<char> ok130(kMaxN, 1), ok65(kMaxN, 1);
    // Contain per-point solver failures: one bad N becomes one "error"
    // row cell, not a dead figure.
    const auto solve_n = [&](std::size_t i) {
        const int n = static_cast<int>(i) + 1;
        try {
            res130[i] = s130.solve(n, 1.0);
        } catch (const std::exception& e) {
            std::cerr << "  [fig2] 130nm solve(N=" << n
                      << ") failed: " << e.what() << "\n";
            ok130[i] = 0;
        }
        try {
            res65[i] = s65.solve(n, 1.0);
        } catch (const std::exception& e) {
            std::cerr << "  [fig2] 65nm solve(N=" << n
                      << ") failed: " << e.what() << "\n";
            ok65[i] = 0;
        }
    };
    int jobs = cli.jobs;
    if (jobs <= 0)
        jobs = static_cast<int>(util::ThreadPool::defaultJobs());
    if (jobs > 1) {
        util::ThreadPool pool(static_cast<unsigned>(jobs));
        pool.parallelFor(0, kMaxN, solve_n);
    } else {
        for (std::size_t i = 0; i < kMaxN; ++i)
            solve_n(i);
    }

    double peak130 = 0.0, peak65 = 0.0;
    int argmax130 = 1, argmax65 = 1;
    for (int n = 1; n <= kMaxN; ++n) {
        const auto& a = res130[n - 1];
        const auto& b = res65[n - 1];
        if (ok130[n - 1] && a.speedup > peak130) {
            peak130 = a.speedup;
            argmax130 = n;
        }
        if (ok65[n - 1] && b.speedup > peak65) {
            peak65 = b.speedup;
            argmax65 = n;
        }
        std::vector<std::string> row = {util::Table::num(n)};
        if (ok130[n - 1]) {
            row.push_back(util::Table::num(a.speedup, 3));
            row.push_back(util::Table::num(a.vdd, 3));
            row.push_back(util::Table::num(a.freq / 1e9, 3));
        } else {
            row.insert(row.end(), {"error", "error", "error"});
        }
        if (ok65[n - 1]) {
            row.push_back(util::Table::num(b.speedup, 3));
            row.push_back(util::Table::num(b.vdd, 3));
            row.push_back(util::Table::num(b.freq / 1e9, 3));
        } else {
            row.insert(row.end(), {"error", "error", "error"});
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    if (cli.cache_stats) {
        // The analytic figures run zero cycle-level simulations; the
        // hot-path counters here are the thermal solver's multi-RHS
        // substitution passes against the one cached factor per node.
        for (const model::AnalyticCmp* cmp : {&cmp130, &cmp65}) {
            const thermal::RCModel& m = cmp->thermalModel();
            std::cerr << "  [fig2 " << cmp->technology().name()
                      << "] cache-stats: sim_calls=0 thermal_solver="
                      << m.solverName()
                      << " thermal_solves=" << m.solveCount()
                      << " thermal_solve_passes=" << m.solvePassCount()
                      << " thermal_max_batch_rhs=" << m.maxBatchRhs()
                      << " thermal_factorizations="
                      << m.factorizationCount()
                      << " thermal_symbolic_analyses="
                      << m.symbolicAnalysisCount() << "\n";
        }
    }

    tlppm_bench::writeMetrics(
        cli,
        util::strcatMsg(
            "{\n  \"sim_calls\": 0,\n  \"thermal_solves\": ",
            cmp130.thermalModel().solveCount() +
                cmp65.thermalModel().solveCount(),
            ",\n  \"thermal_solve_passes\": ",
            cmp130.thermalModel().solvePassCount() +
                cmp65.thermalModel().solvePassCount(),
            ",\n  \"thermal_max_batch_rhs\": ",
            std::max(cmp130.thermalModel().maxBatchRhs(),
                     cmp65.thermalModel().maxBatchRhs()),
            ",\n  \"thermal_factorizations\": ",
            cmp130.thermalModel().factorizationCount() +
                cmp65.thermalModel().factorizationCount(),
            ",\n  \"thermal_symbolic_analyses\": ",
            cmp130.thermalModel().symbolicAnalysisCount() +
                cmp65.thermalModel().symbolicAnalysisCount(),
            "\n}\n"));
    tlppm_bench::finishTrace();

    std::cout << "Measured peaks: 130nm " << peak130 << "x at N="
              << argmax130 << "; 65nm " << peak65 << "x at N=" << argmax65
              << "\n";
    std::cout << "Expected shape (paper): maximum speedup only a little "
                 "over 4, on 130nm; the 65nm curve lies below 130nm and "
                 "degrades faster beyond its peak (higher static power "
                 "share); both technologies decline well before N=32 "
                 "despite eps_n = 1.\n";
    return 0;
}
