/**
 * @file
 * Regenerates Figure 2: speedup of N-core configurations (N = 1..32)
 * under a power budget equal to the single-core full-throttle power, for
 * an application with perfect nominal parallel efficiency (eps_n = 1), on
 * the 130 nm and 65 nm nodes (Scenario II of the analytical model).
 *
 * The rendering itself lives in service::renderFigure ("fig2") — the
 * sweep service serves the identical table from the same code path.
 */

#include <iostream>

#include "bench_util.hpp"
#include "service/figures.hpp"

int
main(int argc, char** argv)
{
    const tlppm_bench::SweepCliOptions cli =
        tlppm_bench::parseSweepCli(argc, argv, /*sim_flags=*/false);
    tlppm_bench::setupTrace(cli);
    tlp::service::FigureOptions options;
    options.jobs = cli.jobs;
    options.cache_stats = cli.cache_stats;
    // Accepted for CLI uniformity; the analytic figure runs no sweep,
    // so the store is never opened.
    options.raw_store = tlppm_bench::rawStorePath(cli);
    const auto run = tlp::service::renderFigure("fig2", options);
    std::cout << run.value().output;
    tlppm_bench::writeMetrics(cli, run.value().metrics_json);
    tlppm_bench::finishTrace();
    return 0;
}
