/**
 * @file
 * Extension: per-core DVFS vs the paper's chip-wide DVFS under load
 * imbalance (§3.1 flags per-core scaling as out of scope; related work
 * [21] motivates it). For several imbalance families, report the chip
 * power of both policies at the same performance deadline.
 */

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "model/per_core_dvfs.hpp"
#include "util/table.hpp"

namespace {

using namespace tlp;

std::vector<double>
uniformWork(int n)
{
    return std::vector<double>(n, 1.0 / n);
}

std::vector<double>
linearSkew(int n, double ratio)
{
    // Work grows linearly from 1 to `ratio` across threads.
    std::vector<double> w(n);
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        w[i] = 1.0 + (ratio - 1.0) * i / std::max(1, n - 1);
        sum += w[i];
    }
    for (double& x : w)
        x /= sum;
    return w;
}

std::vector<double>
oneHeavy(int n, double share)
{
    std::vector<double> w(n, (1.0 - share) / (n - 1));
    w[0] = share;
    return w;
}

} // namespace

int
main()
{
    using namespace tlp;
    tlppm_bench::banner("Per-core DVFS under load imbalance (extension)");

    const model::AnalyticCmp cmp(tech::tech65nm(), 32);
    const model::PerCoreDvfs solver(cmp);

    util::Table table("Chip power at the same deadline, 65nm",
                      {"N", "imbalance", "global DVFS [W]",
                       "per-core DVFS [W]", "saving [%]"});

    struct Case
    {
        const char* name;
        std::vector<double> work;
    };
    for (int n : {4, 8, 16}) {
        const Case cases[] = {
            {"balanced", uniformWork(n)},
            {"linear 1:2", linearSkew(n, 2.0)},
            {"linear 1:4", linearSkew(n, 4.0)},
            {"one thread 40%", oneHeavy(n, 0.4)},
        };
        for (const Case& c : cases) {
            const auto r = solver.solve(c.work);
            if (!r.feasible)
                continue;
            // Strong imbalance can make the *global* policy thermally
            // infeasible outright (every core racing at the heavy
            // thread's frequency); report that instead of a wattage.
            const bool g_run = r.global.runaway;
            table.addRow({util::Table::num(n), c.name,
                          g_run ? "runaway"
                                : util::Table::num(r.global.total_w, 2),
                          util::Table::num(r.per_core.total_w, 2),
                          g_run ? "-"
                                : util::Table::num(
                                      100.0 * r.saving_fraction, 1)});
        }
    }
    table.print(std::cout);
    std::cout << "Expected: zero saving when balanced; savings grow with "
                 "skew because light threads idle down their own cores "
                 "instead of pacing the whole chip.\n";
    return 0;
}
