/**
 * @file
 * Extension study from the paper's closing remark of §4.2: "for these
 * memory-bound applications and low N, one could seek higher performance
 * by overclocking the chip, and still abide by the power budget.
 * However, unless the memory subsystem is also overclocked, the
 * resulting increase in the processor-memory speed gap could partially
 * offset the potential performance gain."
 *
 * We extend the Scenario II frequency sweep beyond the nominal 3.2 GHz
 * (at nominal supply) for Radix and FMM at small N, and report how much
 * of the theoretical overclock actually materializes.
 */

#include <iostream>

#include "bench_util.hpp"
#include "runner/experiment.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int
main()
{
    using namespace tlp;
    const double scale = std::min(0.5, tlppm_bench::workloadScale());
    tlppm_bench::banner("Overclocking extension (paper section 4.2, "
                        "closing remark; scale " +
                        util::Table::num(scale, 2) + ")");

    const runner::Experiment exp(scale);
    const double f1 = exp.technology().fNominal();
    std::cout << "Budget: " << util::Table::num(exp.maxSingleCorePower(), 1)
              << " W\n\n";

    // Frequency grid extended 50% beyond nominal.
    std::vector<double> freqs;
    for (double f = util::mhz(400); f <= 1.5 * f1; f += util::mhz(400))
        freqs.push_back(f);
    freqs.push_back(f1);

    for (const char* name : {"Radix", "FMM"}) {
        const auto& app = workloads::byName(name);
        const std::vector<int> ns = {1, 2, 4};
        const auto standard = exp.scenario2(app, ns);
        const auto overclocked = exp.scenario2(app, ns, freqs);

        util::Table table(std::string(name) +
                              ": overclocking within the budget",
                          {"N", "standard f[GHz]", "standard speedup",
                           "overclocked f[GHz]", "overclocked speedup",
                           "f gain [%]", "speedup gain [%]"});
        for (std::size_t i = 0; i < ns.size(); ++i) {
            const auto& s = standard[i];
            const auto& o = overclocked[i];
            const double f_gain =
                100.0 * (o.freq_hz / s.freq_hz - 1.0);
            const double s_gain =
                100.0 * (o.actual_speedup / s.actual_speedup - 1.0);
            table.addRow({util::Table::num(ns[i]),
                          util::Table::num(s.freq_hz / 1e9, 2),
                          util::Table::num(s.actual_speedup, 3),
                          util::Table::num(o.freq_hz / 1e9, 2),
                          util::Table::num(o.actual_speedup, 3),
                          util::Table::num(f_gain, 1),
                          util::Table::num(s_gain, 1)});
        }
        table.print(std::cout);
    }

    std::cout << "Expected (paper): the memory-bound code (Radix) has "
                 "budget headroom to overclock at small N, but the wider "
                 "processor-memory gap returns only part of the frequency "
                 "gain as speedup; the compute-bound FMM has no headroom "
                 "at all.\n";
    return 0;
}
