/**
 * @file
 * Regenerates Figure 1: normalized power consumption P_N/P1 of N-core
 * configurations pinned to single-core full-throttle performance, as a
 * function of the nominal parallel efficiency eps_n(N), for the 130 nm
 * and 65 nm nodes at T1 = 100 C (Scenario I of the analytical model).
 *
 * Also prints the working points of the paper's sample application
 * (the "o" marks): an application with decaying efficiency evaluated at
 * its own eps_n(N) per N.
 *
 * The rendering itself lives in service::renderFigure ("fig1") — the
 * sweep service serves the identical table from the same code path.
 */

#include <iostream>

#include "bench_util.hpp"
#include "service/figures.hpp"

int
main(int argc, char** argv)
{
    const tlppm_bench::SweepCliOptions cli =
        tlppm_bench::parseSweepCli(argc, argv, /*sim_flags=*/false);
    tlppm_bench::setupTrace(cli);
    tlp::service::FigureOptions options;
    options.jobs = cli.jobs;
    options.cache_stats = cli.cache_stats;
    // Accepted for CLI uniformity; the analytic figure runs no sweep,
    // so the store is never opened.
    options.raw_store = tlppm_bench::rawStorePath(cli);
    const auto run = tlp::service::renderFigure("fig1", options);
    std::cout << run.value().output;
    tlppm_bench::writeMetrics(cli, run.value().metrics_json);
    tlppm_bench::finishTrace();
    return 0;
}
