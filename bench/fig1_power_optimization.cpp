/**
 * @file
 * Regenerates Figure 1: normalized power consumption P_N/P1 of N-core
 * configurations pinned to single-core full-throttle performance, as a
 * function of the nominal parallel efficiency eps_n(N), for the 130 nm
 * and 65 nm nodes at T1 = 100 C (Scenario I of the analytical model).
 *
 * Also prints the working points of the paper's sample application
 * (the "o" marks): an application with decaying efficiency evaluated at
 * its own eps_n(N) per N.
 */

#include <algorithm>
#include <iostream>
#include <utility>

#include "bench_util.hpp"
#include "model/efficiency.hpp"
#include "model/scenario1.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace tlp;

/** Thermal-solver work of the analytic figures, summed over nodes —
 *  what fig1's --metrics snapshot reports (it runs zero simulations). */
struct AnalyticCounters
{
    std::uint64_t thermal_solves = 0;
    std::uint64_t thermal_solve_passes = 0;
    std::uint64_t thermal_factorizations = 0;
    std::uint64_t thermal_symbolic_analyses = 0;
    std::uint64_t thermal_max_batch_rhs = 0; ///< peak across nodes
};

void
runNode(const tech::Technology& tech, util::ThreadPool* pool,
        bool cache_stats, AnalyticCounters& counters)
{
    TLPPM_TRACE_SCOPE("bench", "fig1:", tech.name());
    const model::AnalyticCmp cmp(tech, 32);
    const model::Scenario1 scenario(cmp);

    const int core_counts[] = {2, 4, 8, 16, 32};
    std::vector<std::string> header = {"eps_n"};
    for (int n : core_counts)
        header.push_back("N=" + std::to_string(n));

    util::Table table(
        "Figure 1 (" + tech.name() + "): normalized power P_N/P1 vs "
        "nominal parallel efficiency",
        header);

    // The (eps, N) grid points are independent; fan one task per eps row
    // and add the finished rows in order, so the table is identical to a
    // serial evaluation. Within a row, all five N are priced in one
    // batched call (a lockstep thermal fixed point with multi-RHS
    // solves); per-point results are bit-identical to scalar solve().
    std::vector<int> pcts;
    for (int pct = 5; pct <= 100; pct += 5)
        pcts.push_back(pct);
    std::vector<std::vector<std::string>> rows(pcts.size());
    const auto solve_row = [&](std::size_t i) {
        const double eps = pcts[i] / 100.0;
        std::vector<std::string> row = {util::Table::num(eps, 2)};
        std::vector<std::pair<int, double>> points;
        for (int n : core_counts)
            points.push_back({n, eps});
        std::vector<model::Scenario1Result> results;
        try {
            results = scenario.solveBatch(points);
        } catch (const std::exception& e) {
            std::cerr << "  [fig1] batched row eps=" << eps
                      << " failed (" << e.what()
                      << "); retrying points individually\n";
        }
        for (std::size_t k = 0; k < std::size(core_counts); ++k) {
            const int n = core_counts[k];
            // Contain per-point solver failures: one bad grid point
            // becomes one "error" cell, not a dead figure.
            try {
                const auto r = k < results.size() ? results[k]
                                                  : scenario.solve(n, eps);
                if (!r.feasible) {
                    row.push_back("-");       // needs f > f1: disallowed
                } else if (r.power.runaway) {
                    row.push_back("runaway"); // thermally infeasible
                } else {
                    row.push_back(util::Table::num(r.normalized_power, 3));
                }
            } catch (const std::exception& e) {
                std::cerr << "  [fig1] solve(N=" << n << ", eps=" << eps
                          << ") failed: " << e.what() << "\n";
                row.push_back("error");
            }
        }
        rows[i] = std::move(row);
    };
    if (pool)
        pool->parallelFor(0, pcts.size(), solve_row);
    else
        for (std::size_t i = 0; i < pcts.size(); ++i)
            solve_row(i);
    for (auto& row : rows)
        table.addRow(std::move(row));
    table.print(std::cout);

    // Sample-application marks: eps_n decays with N (communication
    // overhead family), one working point per configuration.
    const model::OverheadEfficiency app(0.02);
    util::Table marks("Figure 1 (" + tech.name() +
                          "): sample-application working points",
                      {"N", "eps_n(N)", "P_N/P1", "V [V]", "f [GHz]",
                       "T [C]"});
    const std::size_t n_marks = std::size(core_counts);
    std::vector<std::vector<std::string>> mark_rows(n_marks);
    // The five working points form one batch (no fan-out needed: the
    // lockstep fixed point amortizes their thermal solves by itself).
    std::vector<std::pair<int, double>> mark_points;
    for (int n : core_counts)
        mark_points.push_back({n, app.at(n)});
    std::vector<model::Scenario1Result> mark_results;
    try {
        mark_results = scenario.solveBatch(mark_points);
    } catch (const std::exception& e) {
        std::cerr << "  [fig1] batched sample-app row failed ("
                  << e.what() << "); retrying points individually\n";
    }
    for (std::size_t i = 0; i < n_marks; ++i) {
        const int n = core_counts[i];
        try {
            const auto r = i < mark_results.size() ? mark_results[i]
                                                   : scenario.solve(n, app);
            mark_rows[i] = {util::Table::num(n),
                            util::Table::num(r.eps_n, 3),
                            util::Table::num(r.normalized_power, 3),
                            util::Table::num(r.vdd, 3),
                            util::Table::num(r.freq / 1e9, 3),
                            util::Table::num(r.power.avg_active_temp_c, 1)};
        } catch (const std::exception& e) {
            std::cerr << "  [fig1] sample-app solve(N=" << n
                      << ") failed: " << e.what() << "\n";
            mark_rows[i] = {util::Table::num(n), "error", "error",
                            "error", "error", "error"};
        }
    }
    for (auto& row : mark_rows)
        marks.addRow(std::move(row));
    marks.print(std::cout);

    const thermal::RCModel& model = cmp.thermalModel();
    counters.thermal_solves += model.solveCount();
    counters.thermal_solve_passes += model.solvePassCount();
    counters.thermal_factorizations += model.factorizationCount();
    counters.thermal_symbolic_analyses += model.symbolicAnalysisCount();
    counters.thermal_max_batch_rhs =
        std::max<std::uint64_t>(counters.thermal_max_batch_rhs,
                                model.maxBatchRhs());
    if (cache_stats) {
        // The analytic figures run zero cycle-level simulations; the
        // relevant hot-path counters here are the thermal solver's:
        // multi-RHS substitution passes against the one cached factor.
        std::cerr << "  [fig1 " << tech.name()
                  << "] cache-stats: sim_calls=0 thermal_solver="
                  << model.solverName()
                  << " thermal_solves=" << model.solveCount()
                  << " thermal_solve_passes=" << model.solvePassCount()
                  << " thermal_max_batch_rhs=" << model.maxBatchRhs()
                  << " thermal_factorizations="
                  << model.factorizationCount()
                  << " thermal_symbolic_analyses="
                  << model.symbolicAnalysisCount() << "\n";
    }
}

} // namespace

int
main(int argc, char** argv)
{
    tlppm_bench::banner("Figure 1 -- Scenario I power optimization "
                        "(analytical model)");
    const tlppm_bench::SweepCliOptions cli =
        tlppm_bench::parseSweepCli(argc, argv, /*sim_flags=*/false);
    tlppm_bench::setupTrace(cli);
    int jobs = cli.jobs;
    if (jobs <= 0)
        jobs = static_cast<int>(tlp::util::ThreadPool::defaultJobs());
    std::unique_ptr<tlp::util::ThreadPool> pool;
    if (jobs > 1)
        pool = std::make_unique<tlp::util::ThreadPool>(
            static_cast<unsigned>(jobs));
    AnalyticCounters counters;
    runNode(tlp::tech::tech130nm(), pool.get(), cli.cache_stats, counters);
    runNode(tlp::tech::tech65nm(), pool.get(), cli.cache_stats, counters);
    tlppm_bench::writeMetrics(
        cli, tlp::util::strcatMsg(
                 "{\n  \"sim_calls\": 0,\n  \"thermal_solves\": ",
                 counters.thermal_solves,
                 ",\n  \"thermal_solve_passes\": ",
                 counters.thermal_solve_passes,
                 ",\n  \"thermal_max_batch_rhs\": ",
                 counters.thermal_max_batch_rhs,
                 ",\n  \"thermal_factorizations\": ",
                 counters.thermal_factorizations,
                 ",\n  \"thermal_symbolic_analyses\": ",
                 counters.thermal_symbolic_analyses, "\n}\n"));
    tlppm_bench::finishTrace();
    std::cout << "Expected shape (paper): curves fall as eps_n grows; "
                 "high-N curves lie above low-N ones at high eps_n; every "
                 "curve drops below 1.0 beyond a break-even eps_n that "
                 "shrinks with N; the best configuration for the sample "
                 "app is not the largest N.\n";
    return 0;
}
