/**
 * @file
 * Regenerates Figure 3: the five-panel Scenario I evaluation of the
 * simulated 16-way CMP over the twelve SPLASH-2-like applications at
 * N in {1, 2, 4, 8, 16} — nominal parallel efficiency, actual speedup,
 * normalized power, normalized power density, and average die
 * temperature (§4.1 of the paper).
 *
 * Full problem sizes take a few minutes of host time; set TLPPM_SCALE to
 * e.g. 0.3 for a quick pass. The sweep fans across hardware threads;
 * control the worker count with --jobs N (or TLPPM_JOBS); --jobs 1 runs
 * serially. The printed tables are byte-identical at any job count.
 *
 * Robustness knobs: --journal PATH appends every completed simulation to
 * a crash-safe journal, --resume replays it first (an interrupted sweep
 * re-simulates only unfinished points), --point-timeout SECONDS arms a
 * per-point watchdog. A failed point is contained, itemized on stderr,
 * and shown as "FAILED" in the tables; the sweep still completes.
 */

#include <iostream>

#include "bench_util.hpp"
#include "runner/sweep_runner.hpp"
#include "util/table.hpp"

int
main(int argc, char** argv)
{
    using namespace tlp;
    const double scale = tlppm_bench::workloadScale();
    tlppm_bench::banner("Figure 3 -- Scenario I on the simulated CMP "
                        "(scale " + util::Table::num(scale, 2) + ")");

    const tlppm_bench::SweepCliOptions cli =
        tlppm_bench::parseSweepCli(argc, argv);
    tlppm_bench::setupTrace(cli);
    runner::SweepRunner::Options options;
    options.jobs = cli.jobs;
    options.scale = scale;
    options.journal_path = cli.journal;
    options.resume = cli.resume;
    options.point_timeout_s = cli.point_timeout_s;
    options.progress = cli.progress;
    options.progress_label = "fig3";
    runner::SweepRunner sweep(options);
    const std::vector<int> ns = {1, 2, 4, 8, 16};

    std::vector<std::string> header = {"Application"};
    for (int n : ns)
        header.push_back("N=" + std::to_string(n));

    util::Table eff("Panel 1: nominal parallel efficiency [%]", header);
    util::Table spd("Panel 2: actual speedup (performance pinned to "
                    "sequential nominal)",
                    header);
    util::Table pwr("Panel 3: normalized power P_N/P_1", header);
    util::Table dens("Panel 4: normalized power density", header);
    util::Table temp("Panel 5: average temperature [C]", header);

    const auto& suite = workloads::suite();
    std::vector<const workloads::WorkloadInfo*> apps;
    for (const auto& info : suite)
        apps.push_back(&info);
    std::cerr << "  [fig3] sweeping " << apps.size() << " applications on "
              << sweep.jobs() << " worker(s)\n";
    const auto all_rows = sweep.scenario1Sweep(apps, ns);

    for (std::size_t a = 0; a < apps.size(); ++a) {
        const auto& info = *apps[a];
        const auto& rows = all_rows[a];
        std::vector<std::string> r_eff = {info.name};
        std::vector<std::string> r_spd = {info.name};
        std::vector<std::string> r_pwr = {info.name};
        std::vector<std::string> r_dens = {info.name};
        std::vector<std::string> r_temp = {info.name};
        for (const auto& row : rows) {
            if (row.failed) {
                // Containment placeholder: the point is itemized in the
                // sweep report below.
                for (auto* cells : {&r_eff, &r_spd, &r_pwr, &r_dens,
                                    &r_temp})
                    cells->push_back("FAILED");
                continue;
            }
            // A '*' marks a thermally unsustainable (runaway) operating
            // point; only tiny TLPPM_SCALE values (distorted efficiency
            // curves) produce these.
            const std::string mark =
                row.measurement.runaway ? "*" : "";
            r_eff.push_back(util::Table::num(100.0 * row.eps_n, 1));
            r_spd.push_back(util::Table::num(row.actual_speedup, 2) +
                            mark);
            r_pwr.push_back(util::Table::num(row.normalized_power, 3) +
                            mark);
            r_dens.push_back(util::Table::num(row.normalized_density, 3) +
                             mark);
            r_temp.push_back(util::Table::num(row.avg_temp_c, 1) + mark);
        }
        eff.addRow(std::move(r_eff));
        spd.addRow(std::move(r_spd));
        pwr.addRow(std::move(r_pwr));
        dens.addRow(std::move(r_dens));
        temp.addRow(std::move(r_temp));
        std::cerr << "  [fig3] " << info.name << " done\n";
    }

    tlppm_bench::reportSweep(sweep.lastReport(), "fig3");
    if (cli.cache_stats)
        tlppm_bench::printCacheStats(sweep.lastReport(), "fig3");
    tlppm_bench::writeMetrics(cli, sweep.lastReport().metricsJson());
    tlppm_bench::finishTrace();

    eff.print(std::cout);
    spd.print(std::cout);
    pwr.print(std::cout);
    dens.print(std::cout);
    temp.print(std::cout);

    std::cout << "Expected shape (paper): efficiency generally falls "
                 "with N; actual speedups exceed 1 for memory-bound "
                 "codes (Ocean, and to a lesser extent Cholesky/"
                 "Radiosity) because chip DVFS narrows the processor-"
                 "memory gap; normalized power falls with N given enough "
                 "efficiency, then stagnates/recedes; power density "
                 "drops ~95% at N=16; temperatures fall toward the 45 C "
                 "ambient, fastest for the hottest applications (FMM, "
                 "LU).\n";
    return 0;
}
