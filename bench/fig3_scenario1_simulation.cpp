/**
 * @file
 * Regenerates Figure 3: the five-panel Scenario I evaluation of the
 * simulated 16-way CMP over the twelve SPLASH-2-like applications at
 * N in {1, 2, 4, 8, 16} — nominal parallel efficiency, actual speedup,
 * normalized power, normalized power density, and average die
 * temperature (§4.1 of the paper).
 *
 * Full problem sizes take a few minutes of host time; set TLPPM_SCALE to
 * e.g. 0.3 for a quick pass. The sweep fans across hardware threads;
 * control the worker count with --jobs N (or TLPPM_JOBS); --jobs 1 runs
 * serially. The printed tables are byte-identical at any job count.
 *
 * Robustness knobs: --journal PATH appends every completed simulation to
 * a crash-safe journal, --resume replays it first (an interrupted sweep
 * re-simulates only unfinished points), --point-timeout SECONDS arms a
 * per-point watchdog. A failed point is contained, itemized on stderr,
 * and shown as "FAILED" in the tables; the sweep still completes.
 *
 * Scale-out: --shards K --shard-index I computes only the rows a stable
 * hash assigns to shard I (the rest render as "-"), journaling them to
 * --journal; run the K shards on separate processes/hosts and reassemble
 * the full tables byte-identically with tlppm_merge.
 *
 * Memoization: --raw-store DIR (or TLPPM_RAW_STORE) attaches a
 * persistent cross-process raw-run store — a warm rerun prices the
 * whole figure without a single simulation (sim_calls=0) and emits
 * byte-identical tables. Safe to share across shards and job counts.
 *
 * Workload override: --workloads A,B,... replaces the twelve-application
 * suite; entries are suite names or trace:<path> specs (tlppm_tracegen
 * dumps the suite to such traces). Replaying the suite's own traces
 * reproduces the default tables byte for byte.
 *
 * The rendering itself lives in service::renderFigure ("fig3") — the
 * sweep service serves the identical tables from the same code path.
 */

#include <iostream>

#include "bench_util.hpp"
#include "runner/fault_injection.hpp"
#include "service/figures.hpp"

int
main(int argc, char** argv)
{
    const tlppm_bench::SweepCliOptions cli =
        tlppm_bench::parseSweepCli(argc, argv);
    tlppm_bench::setupTrace(cli);
    tlp::runner::StoreFaultInjector::instance().installFromEnv();
    tlp::service::FigureOptions options;
    options.jobs = cli.jobs;
    options.scale = tlppm_bench::workloadScale();
    options.journal_path = cli.journal;
    options.resume = cli.resume;
    options.point_timeout_s = cli.point_timeout_s;
    options.progress = cli.progress;
    options.cache_stats = cli.cache_stats;
    options.shards = cli.shards;
    options.shard_index = cli.shard_index;
    options.raw_store = tlppm_bench::rawStorePath(cli);
    options.workloads = cli.workloads;
    const auto run = tlp::service::renderFigure("fig3", options);
    if (!run) {
        // An unresolvable --workloads spec (unknown name, unreadable or
        // corrupt trace) is a usage error, like a malformed flag.
        std::cerr << "error: " << run.error().describe() << "\n";
        return 2;
    }
    std::cout << run.value().output;
    tlppm_bench::writeMetrics(cli, run.value().metrics_json);
    tlppm_bench::finishTrace();
    return 0;
}
