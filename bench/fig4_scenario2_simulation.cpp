/**
 * @file
 * Regenerates Figure 4: nominal vs actual speedup of FMM, Cholesky, and
 * Radix on the simulated CMP under the power budget of one maxed-out
 * core, N = 1..16 (§4.2 of the paper).
 *
 * Full problem sizes take a few minutes of host time; set TLPPM_SCALE to
 * e.g. 0.3 for a quick pass. The sweep fans across hardware threads;
 * control the worker count with --jobs N (or TLPPM_JOBS); --jobs 1 runs
 * serially. The printed tables are byte-identical at any job count.
 *
 * Robustness knobs (as in fig3): --journal PATH, --resume,
 * --point-timeout SECONDS. Failed points are contained, itemized on
 * stderr, and shown as "FAILED" rows; the sweep still completes.
 */

#include <iostream>

#include "bench_util.hpp"
#include "runner/sweep_runner.hpp"
#include "util/table.hpp"

int
main(int argc, char** argv)
{
    using namespace tlp;
    const double scale = tlppm_bench::workloadScale();
    tlppm_bench::banner("Figure 4 -- Scenario II on the simulated CMP "
                        "(scale " + util::Table::num(scale, 2) + ")");

    const tlppm_bench::SweepCliOptions cli =
        tlppm_bench::parseSweepCli(argc, argv);
    tlppm_bench::setupTrace(cli);
    runner::SweepRunner::Options options;
    options.jobs = cli.jobs;
    options.scale = scale;
    options.journal_path = cli.journal;
    options.resume = cli.resume;
    options.point_timeout_s = cli.point_timeout_s;
    options.progress = cli.progress;
    options.progress_label = "fig4";
    runner::SweepRunner sweep(options);
    std::cout << "Power budget (microbenchmark-derived single-core "
                 "maximum): "
              << util::Table::num(sweep.experiment().maxSingleCorePower(),
                                  1)
              << " W\n\n";

    const std::vector<int> ns = {1, 2, 3, 4, 6, 8, 10, 12, 14, 16};
    const char* app_names[] = {"FMM", "Cholesky", "Radix"};
    std::vector<const workloads::WorkloadInfo*> apps;
    for (const char* name : app_names)
        apps.push_back(&workloads::byName(name));
    std::cerr << "  [fig4] sweeping " << apps.size() << " applications on "
              << sweep.jobs() << " worker(s)\n";
    const auto all_rows = sweep.scenario2Sweep(apps, ns);
    tlppm_bench::reportSweep(sweep.lastReport(), "fig4");
    if (cli.cache_stats)
        tlppm_bench::printCacheStats(sweep.lastReport(), "fig4");
    tlppm_bench::writeMetrics(cli, sweep.lastReport().metricsJson());
    tlppm_bench::finishTrace();

    for (std::size_t a = 0; a < apps.size(); ++a) {
        const std::string name = apps[a]->name;
        const auto& rows = all_rows[a];
        util::Table table("Figure 4: " + std::string(name) +
                              " (descending computational intensity: "
                              "FMM > Cholesky > Radix)",
                          {"N", "nominal speedup", "actual speedup",
                           "f [GHz]", "Vdd [V]", "power [W]",
                           "at nominal V/f"});
        for (const auto& row : rows) {
            if (row.failed) {
                table.addRow({util::Table::num(row.n), "FAILED", "FAILED",
                              "-", "-", "-", "-"});
                continue;
            }
            table.addRow({util::Table::num(row.n),
                          util::Table::num(row.nominal_speedup, 2),
                          util::Table::num(row.actual_speedup, 2),
                          util::Table::num(row.freq_hz / 1e9, 2),
                          util::Table::num(row.vdd, 3),
                          util::Table::num(row.power_w, 1),
                          row.at_nominal ? "yes" : "no"});
        }
        table.print(std::cout);
        std::cerr << "  [fig4] " << name << " done\n";
    }

    std::cout << "Expected shape (paper): the nominal/actual gap is "
                 "largest for the compute-intensive FMM and smallest for "
                 "the memory-bound Radix; Radix runs small configurations "
                 "at full V/f without exceeding the budget (its nominal "
                 "power is far below the budget), and only develops a gap "
                 "at larger N.\n";
    return 0;
}
