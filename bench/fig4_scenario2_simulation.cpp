/**
 * @file
 * Regenerates Figure 4: nominal vs actual speedup of FMM, Cholesky, and
 * Radix on the simulated CMP under the power budget of one maxed-out
 * core, N = 1..16 (§4.2 of the paper).
 *
 * Full problem sizes take a few minutes of host time; set TLPPM_SCALE to
 * e.g. 0.3 for a quick pass. The sweep fans across hardware threads;
 * control the worker count with --jobs N (or TLPPM_JOBS); --jobs 1 runs
 * serially. The printed tables are byte-identical at any job count.
 *
 * Robustness knobs (as in fig3): --journal PATH, --resume,
 * --point-timeout SECONDS. Failed points are contained, itemized on
 * stderr, and shown as "FAILED" rows; the sweep still completes.
 * Scale-out (as in fig3): --shards K --shard-index I plus tlppm_merge
 * reassembles the full tables byte-identically.
 * Memoization (as in fig3): --raw-store DIR / TLPPM_RAW_STORE attaches
 * the persistent raw-run store; a warm rerun reports sim_calls=0.
 * Workload override (as in fig3): --workloads A,B replaces the
 * FMM/Cholesky/Radix default with suite names or trace:<path> specs.
 *
 * The rendering itself lives in service::renderFigure ("fig4") — the
 * sweep service serves the identical tables from the same code path.
 */

#include <iostream>

#include "bench_util.hpp"
#include "runner/fault_injection.hpp"
#include "service/figures.hpp"

int
main(int argc, char** argv)
{
    const tlppm_bench::SweepCliOptions cli =
        tlppm_bench::parseSweepCli(argc, argv);
    tlppm_bench::setupTrace(cli);
    tlp::runner::StoreFaultInjector::instance().installFromEnv();
    tlp::service::FigureOptions options;
    options.jobs = cli.jobs;
    options.scale = tlppm_bench::workloadScale();
    options.journal_path = cli.journal;
    options.resume = cli.resume;
    options.point_timeout_s = cli.point_timeout_s;
    options.progress = cli.progress;
    options.cache_stats = cli.cache_stats;
    options.shards = cli.shards;
    options.shard_index = cli.shard_index;
    options.raw_store = tlppm_bench::rawStorePath(cli);
    options.workloads = cli.workloads;
    const auto run = tlp::service::renderFigure("fig4", options);
    if (!run) {
        // An unresolvable --workloads spec (unknown name, unreadable or
        // corrupt trace) is a usage error, like a malformed flag.
        std::cerr << "error: " << run.error().describe() << "\n";
        return 2;
    }
    std::cout << run.value().output;
    tlppm_bench::writeMetrics(cli, run.value().metrics_json);
    tlppm_bench::finishTrace();
    return 0;
}
