/**
 * @file
 * Regenerates Figure 4: nominal vs actual speedup of FMM, Cholesky, and
 * Radix on the simulated CMP under the power budget of one maxed-out
 * core, N = 1..16 (§4.2 of the paper).
 *
 * Full problem sizes take a few minutes of host time; set TLPPM_SCALE to
 * e.g. 0.3 for a quick pass.
 */

#include <iostream>

#include "bench_util.hpp"
#include "runner/experiment.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace tlp;
    const double scale = tlppm_bench::workloadScale();
    tlppm_bench::banner("Figure 4 -- Scenario II on the simulated CMP "
                        "(scale " + util::Table::num(scale, 2) + ")");

    const runner::Experiment exp(scale);
    std::cout << "Power budget (microbenchmark-derived single-core "
                 "maximum): "
              << util::Table::num(exp.maxSingleCorePower(), 1) << " W\n\n";

    const std::vector<int> ns = {1, 2, 3, 4, 6, 8, 10, 12, 14, 16};
    const char* apps[] = {"FMM", "Cholesky", "Radix"};

    for (const char* name : apps) {
        const auto rows = exp.scenario2(workloads::byName(name), ns);
        util::Table table("Figure 4: " + std::string(name) +
                              " (descending computational intensity: "
                              "FMM > Cholesky > Radix)",
                          {"N", "nominal speedup", "actual speedup",
                           "f [GHz]", "Vdd [V]", "power [W]",
                           "at nominal V/f"});
        for (const auto& row : rows) {
            table.addRow({util::Table::num(row.n),
                          util::Table::num(row.nominal_speedup, 2),
                          util::Table::num(row.actual_speedup, 2),
                          util::Table::num(row.freq_hz / 1e9, 2),
                          util::Table::num(row.vdd, 3),
                          util::Table::num(row.power_w, 1),
                          row.at_nominal ? "yes" : "no"});
        }
        table.print(std::cout);
        std::cerr << "  [fig4] " << name << " done\n";
    }

    std::cout << "Expected shape (paper): the nominal/actual gap is "
                 "largest for the compute-intensive FMM and smallest for "
                 "the memory-bound Radix; Radix runs small configurations "
                 "at full V/f without exceeding the budget (its nominal "
                 "power is far below the budget), and only develops a gap "
                 "at larger N.\n";
    return 0;
}
