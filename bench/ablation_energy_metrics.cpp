/**
 * @file
 * Energy-metric view of Scenario I (extension): the paper optimizes
 * power at a fixed performance; here we also report energy, energy-delay
 * product, and ED^2 per configuration on the simulated CMP. Because the
 * memory clock domain gives memory-bound codes genuine speedups, the
 * minimum-EDP and minimum-ED^2 configurations can differ from the
 * minimum-power one.
 */

#include <iostream>

#include "bench_util.hpp"
#include "runner/experiment.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace tlp;
    const double scale = std::min(0.5, tlppm_bench::workloadScale());
    tlppm_bench::banner("Energy metrics across Scenario I configurations "
                        "(scale " + util::Table::num(scale, 2) + ")");

    const runner::Experiment exp(scale);
    const std::vector<int> ns = {1, 2, 4, 8, 16};

    for (const char* name : {"Ocean", "FMM", "Radix"}) {
        const auto rows = exp.scenario1(workloads::byName(name), ns);
        const double e1 = rows[0].measurement.total_w *
            rows[0].measurement.seconds;
        const double d1 = rows[0].measurement.seconds;

        util::Table table(std::string(name) +
                              ": normalized energy metrics",
                          {"N", "power", "delay", "energy", "EDP",
                           "ED^2"});
        int best_edp_n = 1;
        double best_edp = 1e300;
        for (const auto& row : rows) {
            const double delay = row.measurement.seconds / d1;
            const double energy =
                row.measurement.total_w * row.measurement.seconds / e1;
            const double edp = energy * delay;
            const double ed2 = edp * delay;
            if (edp < best_edp) {
                best_edp = edp;
                best_edp_n = row.n;
            }
            table.addRow({util::Table::num(row.n),
                          util::Table::num(row.normalized_power, 3),
                          util::Table::num(delay, 3),
                          util::Table::num(energy, 3),
                          util::Table::num(edp, 3),
                          util::Table::num(ed2, 3)});
        }
        table.print(std::cout);
        std::cout << "  minimum-EDP configuration: N=" << best_edp_n
                  << "\n\n";
    }
    return 0;
}
