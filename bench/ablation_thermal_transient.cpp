/**
 * @file
 * Transient-thermal extension: how fast does the die actually settle
 * after a DVFS/granularity switch? The paper evaluates steady states; the
 * transient view shows that while the die blocks respond within
 * milliseconds, the shared heat sink drags the average temperature (and
 * hence the leakage) over tens of seconds -- justifying steady-state
 * analysis for long-running parallel sections and cautioning against it
 * for brief ones.
 */

#include <iostream>

#include "bench_util.hpp"
#include "tech/technology.hpp"
#include "thermal/transient.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace tlp;
    tlppm_bench::banner("Thermal transient of a 1-core -> 16-core "
                        "Scenario I switch");

    const tech::Technology tech = tech::tech65nm();
    thermal::RCModel model(
        thermal::makeTiledCmp(16, tech.coreAreaM2(), 0.0, false),
        thermal::RCParams{});
    std::vector<double> one_core(16, 0.0);
    one_core[0] = tech.corePowerHot();
    thermal::calibratePackage(
        model, one_core,
        [](const thermal::ThermalSolution& s) {
            return s.block_temps_c[0];
        },
        tech.tHotC());

    // Steady state of the hot single-core configuration ...
    const auto hot = model.solve(one_core);

    // ... then switch to 16 cores at a scaled operating point using a
    // quarter of the power in total.
    std::vector<double> scaled(16, tech.corePowerHot() / 64.0);
    const auto target = model.solve(scaled);

    const thermal::TransientSolver solver(model);
    const auto result = solver.simulate(
        hot.block_temps_c, [&](double) { return scaled; },
        /*duration_s=*/4.0 * solver.sinkTimeConstant(),
        /*dt_s=*/2e-4, /*samples=*/10);

    util::Table table("Average core temperature after the switch",
                      {"time [s]", "avg core T [C]", "sink T [C]"});
    for (const auto& s : result.samples) {
        table.addRow({util::Table::num(s.time_s, 1),
                      util::Table::num(s.avg_core_temp_c, 2),
                      util::Table::num(s.sink_temp_c, 2)});
    }
    table.print(std::cout);
    std::cout << "Steady-state target: "
              << util::Table::num(target.avg_core_temp_c, 2)
              << " C; dominant (sink) time constant "
              << util::Table::num(solver.sinkTimeConstant(), 0)
              << " s; die blocks alone settle within milliseconds.\n";
    return 0;
}
