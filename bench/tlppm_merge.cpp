/**
 * @file
 * tlppm_merge — reassemble sharded sweep journals into the unsharded
 * figure tables.
 *
 * The horizontal-scaling path: run a figure sweep K ways
 * (`fig3_scenario1_simulation --shards K --shard-index I --journal
 * shardI.jsonl`, one process per shard, any hosts), collect the K shard
 * journals, and merge them here. The merge validates the shard metadata
 * (same figure, same scale, indices exactly {0..K-1} — a missing,
 * repeated, or foreign shard is a hard error, never a silently
 * incomplete table), deduplicates the cross-shard baseline points, and
 * writes one unsharded journal; it then re-renders the figure from that
 * journal in resume mode, which replays every point from the cache and
 * runs zero simulations — so the printed tables are byte-identical to a
 * single-process run.
 *
 * Usage:
 *   tlppm_merge --out merged.jsonl [--jobs N] [--merge-only]
 *               [--cache-stats] shard0.jsonl shard1.jsonl …
 *
 * The figure name and problem scale come from the shard metadata, not
 * from flags or TLPPM_SCALE — a shard set is self-describing. The
 * merged tables go to stdout; merge accounting goes to stderr. Exit 0
 * on success, 1 on a merge/validation error, 2 on a usage error.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runner/journal.hpp"
#include "service/figures.hpp"

int
main(int argc, char** argv)
{
    std::string out_path;
    int jobs = 1;
    bool merge_only = false;
    bool cache_stats = false;
    std::vector<std::string> shard_paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string name = arg;
        std::string value;
        bool has_value = false;
        const std::string::size_type eq = arg.find('=');
        if (eq != std::string::npos && arg.rfind("--", 0) == 0) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            has_value = true;
        }
        if (name == "--out" || name == "--jobs") {
            if (!has_value) {
                if (i + 1 >= argc)
                    tlppm_bench::usageError("flag '" + name +
                                            "' needs a value");
                value = argv[++i];
            }
            if (name == "--out") {
                out_path = value;
            } else {
                jobs = tlppm_bench::parsedJobs(value);
            }
        } else if (name == "--merge-only") {
            merge_only = true;
        } else if (name == "--cache-stats") {
            cache_stats = true;
        } else if (name.rfind("--", 0) == 0) {
            tlppm_bench::usageError(
                "unknown argument '" + arg +
                "' (expected --out PATH, --jobs N, --merge-only, "
                "--cache-stats, then the shard journal paths)");
        } else {
            shard_paths.push_back(arg);
        }
    }
    if (out_path.empty())
        tlppm_bench::usageError("--out PATH is required");
    if (shard_paths.empty())
        tlppm_bench::usageError("no shard journals given");

    const auto merged =
        tlp::runner::Journal::mergeShards(shard_paths, out_path);
    if (!merged.ok()) {
        std::cerr << "error: " << merged.error().describe() << "\n";
        return 1;
    }
    const tlp::runner::MergeStats& stats = merged.value();
    std::cerr << "  [merge] " << stats.shards << " shard(s) of "
              << stats.label << " (scale " << stats.scale << ") -> '"
              << out_path << "': " << stats.entries << " points, "
              << stats.duplicates << " cross-shard duplicate(s) dropped"
              << ", corrupt=" << stats.corrupt
              << " inadmissible=" << stats.inadmissible << "\n";
    if (merge_only)
        return 0;

    if (!tlp::service::figureExists(stats.label)) {
        std::cerr << "error: shard metadata names unknown figure '"
                  << stats.label << "'; merged journal written, "
                  << "rendering skipped\n";
        return 1;
    }
    tlp::service::FigureOptions options;
    options.jobs = jobs;
    options.scale = stats.scale;
    options.journal_path = out_path;
    options.resume = true;
    options.cache_stats = cache_stats;
    // A trace-replay (or otherwise overridden) sweep stamped its
    // workload list into the shard metadata; re-render against the same
    // set so the merged tables match the unsharded run byte for byte.
    options.workloads = stats.workloads;
    const auto run = tlp::service::renderFigure(stats.label, options);
    if (!run.ok()) {
        std::cerr << "error: " << run.error().describe() << "\n";
        return 1;
    }
    std::cout << run.value().output;
    std::cerr << "  [merge] rendered " << stats.label
              << " from the merged journal (sim_calls="
              << run.value().report.sim_calls << ", replayed="
              << run.value().report.replayed << ")\n";
    return 0;
}
