/**
 * @file
 * Ablation: the memory clock domain under chip DVFS.
 *
 * The analytical model assumes system-wide voltage/frequency scaling
 * (memory latency constant in cycles); the experimental model scales only
 * the chip, so the memory round trip shrinks in cycles as the chip slows
 * down — the mechanism behind the >1 "actual speedups" of memory-bound
 * applications in Figure 3 and Radix's resilience in Figure 4. This bench
 * runs Scenario I both ways to isolate the effect.
 */

#include <iostream>

#include "bench_util.hpp"
#include "runner/experiment.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace tlp;
    const double scale =
        std::min(0.5, tlppm_bench::workloadScale()); // two pipelines
    tlppm_bench::banner("Memory clock-domain ablation (scale " +
                        util::Table::num(scale, 2) + ")");

    sim::CmpConfig scaled_config;
    scaled_config.scale_memory_with_chip = true;

    const runner::Experiment chip_only(scale);
    const runner::Experiment system_wide(scale, scaled_config);
    const std::vector<int> ns = {1, 2, 4, 8, 16};

    for (const char* name : {"Ocean", "Radix", "FMM"}) {
        const auto& info = workloads::byName(name);
        const auto fixed_mem = chip_only.scenario1(info, ns);
        const auto scaled_mem = system_wide.scenario1(info, ns);

        util::Table table(
            std::string("Scenario I actual speedup: ") + name,
            {"N", "chip-only DVFS (paper)", "system-wide DVFS "
             "(analytical assumption)"});
        for (std::size_t i = 0; i < ns.size(); ++i) {
            table.addRow(
                {util::Table::num(ns[i]),
                 util::Table::num(fixed_mem[i].actual_speedup, 3),
                 util::Table::num(scaled_mem[i].actual_speedup, 3)});
        }
        table.print(std::cout);
    }
    std::cout << "Expected: with chip-only DVFS, memory-bound codes "
                 "(Ocean, Radix) show actual speedups well above 1; with "
                 "system-wide scaling the effect disappears and speedups "
                 "stay near 1 (the performance target).\n";
    return 0;
}
