/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 */

#ifndef TLPPM_BENCH_UTIL_HPP
#define TLPPM_BENCH_UTIL_HPP

#include <cstdlib>
#include <iostream>
#include <string>

#include "runner/sweep_report.hpp"
#include "util/parse.hpp"

namespace tlppm_bench {

/** A malformed knob is a usage error: report it and exit(2) rather than
 *  silently running a multi-minute sweep at an unintended setting. */
[[noreturn]] inline void
usageError(const std::string& what)
{
    std::cerr << "error: " << what << "\n";
    std::exit(2);
}

/**
 * Problem-size scale for the simulation benches: @p fallback reproduces
 * the bench's default; set the TLPPM_SCALE environment variable to a
 * value in (0, 1] to override. Malformed values are a hard usage error —
 * an ignored typo would silently burn minutes at full scale.
 */
inline double
workloadScale(double fallback = 1.0)
{
    const char* env = std::getenv("TLPPM_SCALE");
    if (env == nullptr || *env == '\0')
        return fallback;
    const auto value =
        tlp::util::parseNumber(env, "TLPPM_SCALE", 1e-6, 1.0);
    if (!value)
        usageError(value.error().describe());
    return value.value();
}

/** Parse the integer argument of @p flag, exiting on garbage. */
inline int
parsedJobs(const std::string& text)
{
    const auto jobs = tlp::util::parseInt(text, "--jobs", 1, 4096);
    if (!jobs)
        usageError(jobs.error().describe());
    return static_cast<int>(jobs.value());
}

/**
 * Worker count for the parallel harnesses: `--jobs N` (or `--jobs=N`) on
 * the command line wins, else 0 is returned and the sweep layer falls
 * back to TLPPM_JOBS / the hardware concurrency
 * (util::ThreadPool::defaultJobs()). Pass `--jobs 1` for the serial path.
 */
inline int
jobsFromArgsOrEnv(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc)
            return parsedJobs(argv[i + 1]);
        if (arg.rfind("--jobs=", 0) == 0)
            return parsedJobs(arg.substr(7));
    }
    return 0;
}

/** Robustness knobs shared by the sweep-driving figure harnesses. */
struct SweepCliOptions
{
    int jobs = 0;               ///< --jobs N (0: defaultJobs())
    std::string journal;        ///< --journal PATH (empty: off)
    bool resume = false;        ///< --resume (replay journal first)
    double point_timeout_s = 0; ///< --point-timeout SECONDS (0: off)
    bool cache_stats = false;   ///< --cache-stats (counters to stderr)
};

/**
 * Parse the sweep CLI: --jobs N, --journal PATH, --resume,
 * --point-timeout SECONDS, --cache-stats (value-taking flags also in
 * --flag=value form). Unknown arguments are a usage error.
 */
inline SweepCliOptions
parseSweepCli(int argc, char** argv)
{
    SweepCliOptions options;
    const auto timeout = [&](const std::string& text) {
        const auto value =
            tlp::util::parseNumber(text, "--point-timeout", 0.0, 86400.0);
        if (!value)
            usageError(value.error().describe());
        options.point_timeout_s = value.value();
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            options.jobs = parsedJobs(argv[++i]);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            options.jobs = parsedJobs(arg.substr(7));
        } else if (arg == "--journal" && i + 1 < argc) {
            options.journal = argv[++i];
        } else if (arg.rfind("--journal=", 0) == 0) {
            options.journal = arg.substr(10);
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (arg == "--point-timeout" && i + 1 < argc) {
            timeout(argv[++i]);
        } else if (arg.rfind("--point-timeout=", 0) == 0) {
            timeout(arg.substr(16));
        } else if (arg == "--cache-stats") {
            options.cache_stats = true;
        } else {
            usageError("unknown argument '" + arg +
                       "' (expected --jobs N, --journal PATH, --resume, "
                       "--point-timeout SECONDS, --cache-stats)");
        }
    }
    if (options.resume && options.journal.empty())
        usageError("--resume requires --journal PATH");
    return options;
}

/** Tolerant scan for --cache-stats, for the harnesses that otherwise
 *  only read --jobs (jobsFromArgsOrEnv). */
inline bool
cacheStatsFromArgs(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--cache-stats")
            return true;
    }
    return false;
}

/**
 * One-line two-level cache accounting of a sweep, printed to stderr when
 * --cache-stats is set: simulations and pricing passes actually executed,
 * and the hit/miss split of both cache levels.
 */
inline void
printCacheStats(const tlp::runner::SweepReport& report, const char* tag)
{
    std::cerr << "  [" << tag << "] cache-stats: sim_calls="
              << report.sim_calls << " price_calls=" << report.price_calls
              << " raw_hits=" << report.raw_hits
              << " raw_misses=" << report.raw_misses
              << " priced_hits=" << report.priced_hits
              << " priced_misses=" << report.priced_misses << "\n";
}

/**
 * Print the sweep's containment ledger to stderr: one summary line, plus
 * one line per failed point. Returns true when the sweep was clean. The
 * harnesses still exit 0 on a partially failed sweep — the completed
 * rows are valid results and the failures are itemized here.
 */
inline bool
reportSweep(const tlp::runner::SweepReport& report, const char* tag)
{
    std::cerr << "  [" << tag << "] " << report.summary() << "\n";
    for (const auto& f : report.failed) {
        std::cerr << "  [" << tag << "] FAILED " << f.phase << " "
                  << f.workload << " n=" << f.n << " after " << f.attempts
                  << " attempt(s), " << f.wall_seconds
                  << " s: " << f.error.describe() << "\n";
    }
    return report.allOk();
}

/** Header banner naming the figure/table being regenerated. */
inline void
banner(const std::string& what)
{
    std::cout << "##\n## Reproducing " << what
              << "\n## (Li & Martinez, ISPASS 2005)\n##\n\n";
}

} // namespace tlppm_bench

#endif // TLPPM_BENCH_UTIL_HPP
