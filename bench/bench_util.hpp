/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 */

#ifndef TLPPM_BENCH_UTIL_HPP
#define TLPPM_BENCH_UTIL_HPP

#include <cstdlib>
#include <iostream>
#include <string>

namespace tlppm_bench {

/**
 * Problem-size scale for the simulation benches: 1.0 reproduces the
 * paper-scale workloads (minutes of host time for the full Figure 3/4
 * sweeps); set the TLPPM_SCALE environment variable to a value in (0, 1]
 * for quicker runs.
 */
inline double
workloadScale()
{
    if (const char* env = std::getenv("TLPPM_SCALE")) {
        const double value = std::atof(env);
        if (value > 0.0 && value <= 1.0)
            return value;
        std::cerr << "ignoring invalid TLPPM_SCALE='" << env << "'\n";
    }
    return 1.0;
}

/**
 * Worker count for the parallel harnesses: `--jobs N` (or `--jobs=N`) on
 * the command line wins, else 0 is returned and the sweep layer falls
 * back to TLPPM_JOBS / the hardware concurrency
 * (util::ThreadPool::defaultJobs()). Pass `--jobs 1` for the legacy
 * serial path.
 */
inline int
jobsFromArgsOrEnv(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc)
            return std::atoi(argv[i + 1]);
        if (arg.rfind("--jobs=", 0) == 0)
            return std::atoi(arg.c_str() + 7);
    }
    return 0;
}

/** Header banner naming the figure/table being regenerated. */
inline void
banner(const std::string& what)
{
    std::cout << "##\n## Reproducing " << what
              << "\n## (Li & Martinez, ISPASS 2005)\n##\n\n";
}

} // namespace tlppm_bench

#endif // TLPPM_BENCH_UTIL_HPP
