/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 */

#ifndef TLPPM_BENCH_UTIL_HPP
#define TLPPM_BENCH_UTIL_HPP

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <set>
#include <string>

#include "runner/sweep_report.hpp"
#include "util/error.hpp"
#include "util/parse.hpp"
#include "util/trace.hpp"

namespace tlppm_bench {

/** A malformed knob is a usage error: report it and exit(2) rather than
 *  silently running a multi-minute sweep at an unintended setting. */
[[noreturn]] inline void
usageError(const std::string& what)
{
    std::cerr << "error: " << what << "\n";
    std::exit(2);
}

/**
 * Problem-size scale for the simulation benches: @p fallback reproduces
 * the bench's default; set the TLPPM_SCALE environment variable to a
 * value in (0, 1] to override. Malformed values are a hard usage error —
 * an ignored typo would silently burn minutes at full scale.
 */
inline double
workloadScale(double fallback = 1.0)
{
    const char* env = std::getenv("TLPPM_SCALE");
    if (env == nullptr || *env == '\0')
        return fallback;
    const auto value =
        tlp::util::parseNumber(env, "TLPPM_SCALE", 1e-6, 1.0);
    if (!value)
        usageError(value.error().describe());
    return value.value();
}

/** Parse the integer argument of @p flag, exiting on garbage. */
inline int
parsedJobs(const std::string& text)
{
    const auto jobs = tlp::util::parseInt(text, "--jobs", 1, 4096);
    if (!jobs)
        usageError(jobs.error().describe());
    return static_cast<int>(jobs.value());
}

/**
 * Worker count for the parallel harnesses: `--jobs N` (or `--jobs=N`) on
 * the command line wins, else 0 is returned and the sweep layer falls
 * back to TLPPM_JOBS / the hardware concurrency
 * (util::ThreadPool::defaultJobs()). Pass `--jobs 1` for the serial path.
 */
inline int
jobsFromArgsOrEnv(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc)
            return parsedJobs(argv[i + 1]);
        if (arg.rfind("--jobs=", 0) == 0)
            return parsedJobs(arg.substr(7));
    }
    return 0;
}

/** Robustness and observability knobs shared by the figure harnesses. */
struct SweepCliOptions
{
    int jobs = 0;               ///< --jobs N (0: defaultJobs())
    std::string journal;        ///< --journal PATH (empty: off)
    bool resume = false;        ///< --resume (replay journal first)
    double point_timeout_s = 0; ///< --point-timeout SECONDS (0: off)
    bool cache_stats = false;   ///< --cache-stats (counters to stderr)
    std::string trace;          ///< --trace PATH (Chrome trace JSON)
    std::string metrics;        ///< --metrics PATH (RunMetrics JSON)
    bool progress = false;      ///< --progress (heartbeat to stderr)
    int shards = 1;             ///< --shards K (1: unsharded)
    int shard_index = 0;        ///< --shard-index I in [0, K)
    std::string raw_store;      ///< --raw-store DIR (empty: off)
    /** --workloads A,B,... (empty: the figure's defaults). Suite names
     *  or trace:<path> specs; fig5_multiprog takes co-schedule specs. */
    std::string workloads;
};

/**
 * Error-returning sweep CLI parser — the testable core of
 * parseSweepCli(). Flags may appear in any order, each at most once
 * (a duplicate is a ParseError: a contradictory command line must not
 * silently pick a winner), value-taking flags accept both "--flag VALUE"
 * and "--flag=VALUE". With @p sim_flags false (the analytic figures,
 * which run no sweep) the sweep-only knobs --journal, --resume,
 * --point-timeout, and --progress are rejected by name.
 */
inline tlp::util::Expected<SweepCliOptions>
tryParseSweepCli(int argc, const char* const* argv, bool sim_flags = true)
{
    using tlp::util::Error;
    using tlp::util::ErrorCode;
    SweepCliOptions options;
    std::set<std::string> seen;

    // One iteration handles one flag: `name` is the bare flag, `value`
    // its argument (value-taking flags only), with i already advanced
    // past a separate-token value.
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string name = arg;
        std::string value;
        bool has_value = false;
        // Only split "--flag=value" at the '=': a bare operand like a
        // workload spec ("trace:runs/a=b.trc") must reach the
        // unknown-argument diagnostic whole, not be misparsed as a
        // flag named by its prefix.
        const std::string::size_type eq = arg.find('=');
        if (eq != std::string::npos && arg.rfind("--", 0) == 0) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            has_value = true;
        }

        static const std::set<std::string> kValueFlags = {
            "--jobs",    "--journal", "--point-timeout",
            "--trace",   "--metrics", "--shards",
            "--shard-index", "--raw-store", "--workloads"};
        static const std::set<std::string> kBoolFlags = {
            "--resume", "--cache-stats", "--progress"};
        static const std::set<std::string> kSimOnly = {
            "--journal", "--resume", "--point-timeout", "--progress",
            "--shards", "--shard-index", "--workloads"};

        if (!kValueFlags.count(name) && !kBoolFlags.count(name)) {
            return Error{ErrorCode::ParseError,
                         "unknown argument '" + arg +
                             "' (expected --jobs N, --journal PATH, "
                             "--resume, --point-timeout SECONDS, "
                             "--cache-stats, --trace PATH, "
                             "--metrics PATH, --progress, --shards K, "
                             "--shard-index I, --raw-store DIR, "
                             "--workloads A,B)"};
        }
        if (!seen.insert(name).second) {
            return Error{ErrorCode::ParseError,
                         "duplicate flag '" + name + "'"};
        }
        if (!sim_flags && kSimOnly.count(name)) {
            return Error{ErrorCode::ParseError,
                         "flag '" + name +
                             "' only applies to the simulation sweeps "
                             "(fig3/fig4)"};
        }
        if (kBoolFlags.count(name)) {
            if (has_value) {
                return Error{ErrorCode::ParseError,
                             "flag '" + name + "' takes no value"};
            }
        } else if (!has_value) {
            if (i + 1 >= argc) {
                return Error{ErrorCode::ParseError,
                             "flag '" + name + "' needs a value"};
            }
            value = argv[++i];
        }

        if (name == "--jobs") {
            const auto jobs = tlp::util::parseInt(value, "--jobs", 1, 4096);
            if (!jobs)
                return jobs.error();
            options.jobs = static_cast<int>(jobs.value());
        } else if (name == "--journal") {
            options.journal = value;
        } else if (name == "--resume") {
            options.resume = true;
        } else if (name == "--point-timeout") {
            const auto t = tlp::util::parseNumber(value, "--point-timeout",
                                                  0.0, 86400.0);
            if (!t)
                return t.error();
            options.point_timeout_s = t.value();
        } else if (name == "--cache-stats") {
            options.cache_stats = true;
        } else if (name == "--trace") {
            options.trace = value;
        } else if (name == "--metrics") {
            options.metrics = value;
        } else if (name == "--progress") {
            options.progress = true;
        } else if (name == "--shards") {
            const auto k = tlp::util::parseInt(value, "--shards", 1, 4096);
            if (!k)
                return k.error();
            options.shards = static_cast<int>(k.value());
        } else if (name == "--shard-index") {
            const auto idx =
                tlp::util::parseInt(value, "--shard-index", 0, 4095);
            if (!idx)
                return idx.error();
            options.shard_index = static_cast<int>(idx.value());
        } else if (name == "--raw-store") {
            if (value.empty()) {
                return Error{ErrorCode::ParseError,
                             "--raw-store needs a directory"};
            }
            options.raw_store = value;
        } else if (name == "--workloads") {
            if (value.empty()) {
                return Error{ErrorCode::ParseError,
                             "--workloads needs a comma-joined list"};
            }
            // Journal shard-meta lines store the list in a quoted JSON
            // field parsed without escapes; refuse the one character
            // that would corrupt it.
            if (value.find('"') != std::string::npos) {
                return Error{ErrorCode::ParseError,
                             "--workloads must not contain '\"'"};
            }
            options.workloads = value;
        }
    }
    if (options.resume && options.journal.empty()) {
        return Error{ErrorCode::ParseError,
                     "--resume requires --journal PATH"};
    }
    if (seen.count("--shard-index") && !seen.count("--shards")) {
        return Error{ErrorCode::ParseError,
                     "--shard-index requires --shards K"};
    }
    if (options.shards > 1) {
        // Each shard must journal: the shard journals ARE the result —
        // merging them (tlppm_merge) is how the table is assembled.
        if (options.journal.empty()) {
            return Error{ErrorCode::ParseError,
                         "--shards requires --journal PATH (the shard "
                         "journal is the shard's output)"};
        }
        if (options.shard_index >= options.shards) {
            return Error{ErrorCode::ParseError,
                         "--shard-index must be in [0, --shards)"};
        }
    }
    return options;
}

/**
 * Parse the figure-harness CLI (see tryParseSweepCli for the grammar);
 * a malformed command line is a usage error (exit 2).
 */
inline SweepCliOptions
parseSweepCli(int argc, char** argv, bool sim_flags = true)
{
    auto options = tryParseSweepCli(argc, argv, sim_flags);
    if (!options)
        usageError(options.error().describe());
    return options.value();
}

/**
 * Arm the tracer before a bench runs: --trace PATH wins, else the
 * TLPPM_TRACE environment variable; no-op when neither is set.
 */
inline void
setupTrace(const SweepCliOptions& cli)
{
    if (!cli.trace.empty())
        tlp::util::Tracer::instance().enable(cli.trace);
    else
        tlp::util::Tracer::instance().enableFromEnv();
}

/** Stop recording and write the trace file (no-op when never armed).
 *  Call once, after all worker threads have quiesced. */
inline void
finishTrace()
{
    tlp::util::Tracer& tracer = tlp::util::Tracer::instance();
    if (!tracer.enabled())
        return;
    tracer.disable();
    tracer.writeFile();
    std::cerr << "  [trace] wrote " << tracer.path() << "\n";
}

/** The --metrics output path: the flag wins, else TLPPM_METRICS. */
inline std::string
metricsPath(const SweepCliOptions& cli)
{
    if (!cli.metrics.empty())
        return cli.metrics;
    const char* env = std::getenv("TLPPM_METRICS");
    return env != nullptr ? env : "";
}

/** The persistent raw-run store directory: --raw-store DIR wins, else
 *  the TLPPM_RAW_STORE environment variable; empty means off. */
inline std::string
rawStorePath(const SweepCliOptions& cli)
{
    if (!cli.raw_store.empty())
        return cli.raw_store;
    const char* env = std::getenv("TLPPM_RAW_STORE");
    return env != nullptr ? env : "";
}

/** Write @p json to the --metrics / TLPPM_METRICS path (no-op when
 *  neither names one). A write failure is fatal — CI consumes this. */
inline void
writeMetrics(const SweepCliOptions& cli, const std::string& json)
{
    const std::string path = metricsPath(cli);
    if (path.empty())
        return;
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        tlp::util::fatal("cannot open metrics output '" + path + "'");
    const std::size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    if (written != json.size() || std::fclose(file) != 0)
        tlp::util::fatal("short write to metrics output '" + path + "'");
    std::cerr << "  [metrics] wrote " << path << "\n";
}

/** Tolerant scan for --cache-stats, for the harnesses that otherwise
 *  only read --jobs (jobsFromArgsOrEnv). */
inline bool
cacheStatsFromArgs(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--cache-stats")
            return true;
    }
    return false;
}

/**
 * One-line two-level cache accounting of a sweep, printed to stderr when
 * --cache-stats is set: simulations and pricing passes actually executed,
 * and the hit/miss split of both cache levels. With a persistent raw-run
 * store attached (--raw-store / TLPPM_RAW_STORE) a second line itemizes
 * the store's hit/miss/append flow and its load-time accounting.
 */
inline void
printCacheStats(const tlp::runner::SweepReport& report, const char* tag)
{
    std::cerr << "  [" << tag << "] cache-stats: sim_calls="
              << report.sim_calls << " price_calls=" << report.price_calls
              << " raw_hits=" << report.raw_hits
              << " raw_misses=" << report.raw_misses
              << " priced_hits=" << report.priced_hits
              << " priced_misses=" << report.priced_misses
              << " replayed=" << report.replayed
              << " replay_corrupt=" << report.replay_corrupt
              << " replay_inadmissible=" << report.replay_inadmissible
              << " sched=" << report.sched_expensive << "x/"
              << report.sched_cheap << "c"
              << " pool_tasks=" << report.pool_tasks
              << " steals=" << report.pool_steals
              << " pinned=" << report.pool_workers_pinned << "\n";
    if (report.store_attached) {
        std::cerr << "  [" << tag << "] store-stats: store_hits="
                  << report.store_hits
                  << " store_misses=" << report.store_misses
                  << " store_appends=" << report.store_appends
                  << " store_loaded=" << report.store_loaded
                  << " store_quarantined=" << report.store_quarantined
                  << " store_fp_rejected=" << report.store_fp_rejected
                  << " store_load_micros=" << report.store_load_micros
                  << "\n";
    }
}

/**
 * Print the sweep's containment ledger to stderr: one summary line, plus
 * one line per failed point. Returns true when the sweep was clean. The
 * harnesses still exit 0 on a partially failed sweep — the completed
 * rows are valid results and the failures are itemized here.
 */
inline bool
reportSweep(const tlp::runner::SweepReport& report, const char* tag)
{
    std::cerr << "  [" << tag << "] " << report.summary() << "\n";
    for (const auto& f : report.failed) {
        std::cerr << "  [" << tag << "] FAILED " << f.phase << " "
                  << f.workload << " n=" << f.n << " after " << f.attempts
                  << " attempt(s), " << f.wall_seconds
                  << " s: " << f.error.describe() << "\n";
    }
    return report.allOk();
}

/** Header banner naming the figure/table being regenerated. */
inline void
banner(const std::string& what)
{
    std::cout << "##\n## Reproducing " << what
              << "\n## (Li & Martinez, ISPASS 2005)\n##\n\n";
}

} // namespace tlppm_bench

#endif // TLPPM_BENCH_UTIL_HPP
