/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 */

#ifndef TLPPM_BENCH_UTIL_HPP
#define TLPPM_BENCH_UTIL_HPP

#include <cstdlib>
#include <iostream>
#include <string>

namespace tlppm_bench {

/**
 * Problem-size scale for the simulation benches: 1.0 reproduces the
 * paper-scale workloads (minutes of host time for the full Figure 3/4
 * sweeps); set the TLPPM_SCALE environment variable to a value in (0, 1]
 * for quicker runs.
 */
inline double
workloadScale()
{
    if (const char* env = std::getenv("TLPPM_SCALE")) {
        const double value = std::atof(env);
        if (value > 0.0 && value <= 1.0)
            return value;
        std::cerr << "ignoring invalid TLPPM_SCALE='" << env << "'\n";
    }
    return 1.0;
}

/** Header banner naming the figure/table being regenerated. */
inline void
banner(const std::string& what)
{
    std::cout << "##\n## Reproducing " << what
              << "\n## (Li & Martinez, ISPASS 2005)\n##\n\n";
}

} // namespace tlppm_bench

#endif // TLPPM_BENCH_UTIL_HPP
