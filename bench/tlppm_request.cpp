/**
 * @file
 * tlppm_request — the sweep-service client.
 *
 * Enqueues one figure request into a tlppm_serve store and waits for the
 * answer: writes `<store>/queue/<id>.req` atomically (the daemon never
 * sees a half-written request), then polls `<store>/results/<id>.resp`.
 * The response's sealed header and payload CRC are verified before
 * anything reaches stdout — a torn or corrupt response is an error, not
 * a silently wrong table.
 *
 * The client deliberately never opens the store itself (the daemon holds
 * the advisory lock); it only touches the queue and results directories.
 *
 * Exit codes: 0 ok, 1 request failed / bad response, 2 timed out
 * waiting, 3 shed by admission control (retry later).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <unistd.h>

#include "service/wire.hpp"
#include "util/crc32.hpp"
#include "util/fs.hpp"
#include "util/parse.hpp"

namespace {

[[noreturn]] void
usage(const std::string& what)
{
    std::cerr << "error: " << what << "\n"
              << "usage: tlppm_request --store DIR --figure NAME\n"
              << "  [--scale S] [--jobs N] [--id ID] [--wait S]\n"
              << "  [--poll-period S] [--quiet]\n";
    std::exit(2);
}

struct RequestCli
{
    std::string store;
    std::string figure;
    std::string id;
    double scale = 1.0;
    int jobs = 0;
    double wait_s = 600.0; ///< 0: enqueue only, do not wait
    double poll_period_s = 0.05;
    bool quiet = false;
};

RequestCli
parseCli(int argc, char** argv)
{
    using tlp::util::parseInt;
    using tlp::util::parseNumber;
    RequestCli cli;
    for (int i = 1; i < argc; ++i) {
        const std::string name = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("flag '" + name + "' needs a value");
            return argv[++i];
        };
        auto number = [&](double lo, double hi) {
            const auto v = parseNumber(value(), name.c_str(), lo, hi);
            if (!v)
                usage(v.error().describe());
            return v.value();
        };
        if (name == "--store")
            cli.store = value();
        else if (name == "--figure")
            cli.figure = value();
        else if (name == "--id")
            cli.id = value();
        else if (name == "--scale")
            cli.scale = number(1e-6, 1.0);
        else if (name == "--jobs") {
            const auto jobs = parseInt(value(), "--jobs", 1, 4096);
            if (!jobs)
                usage(jobs.error().describe());
            cli.jobs = static_cast<int>(jobs.value());
        } else if (name == "--wait")
            cli.wait_s = number(0.0, 86400.0);
        else if (name == "--poll-period")
            cli.poll_period_s = number(0.001, 3600.0);
        else if (name == "--quiet")
            cli.quiet = true;
        else
            usage("unknown argument '" + name + "'");
    }
    if (cli.store.empty())
        usage("--store DIR is required");
    if (cli.figure.empty())
        usage("--figure NAME is required");
    if (cli.id.empty()) {
        // Unique enough for one store: pid + wall-clock nanoseconds.
        const auto now = std::chrono::system_clock::now()
                             .time_since_epoch()
                             .count();
        cli.id = "r" + std::to_string(::getpid()) + "-" +
            std::to_string(static_cast<unsigned long long>(now));
    }
    return cli;
}

std::string
requestLine(const RequestCli& cli)
{
    char scale[40];
    std::snprintf(scale, sizeof(scale), "%.17g", cli.scale);
    return tlp::service::sealJsonLine(
               "{\"tlppm_request\":1,\"figure\":\"" + cli.figure +
               "\",\"scale\":" + scale +
               ",\"jobs\":" + std::to_string(cli.jobs)) +
        "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace tlp::service;
    const RequestCli cli = parseCli(argc, argv);

    // The queue may predate the daemon (enqueue-before-serve is legal);
    // creating the directories here never conflicts with the store lock.
    for (const char* sub : {"", "/queue", "/results"}) {
        if (auto made = tlp::util::ensureDir(cli.store + sub); !made)
            usage(made.error().describe());
    }

    const std::string req_path =
        cli.store + "/queue/" + cli.id + ".req";
    const std::string resp_path =
        cli.store + "/results/" + cli.id + ".resp";
    if (auto written =
            tlp::util::atomicWriteFile(req_path, requestLine(cli));
        !written) {
        std::cerr << "tlppm_request: enqueue failed: "
                  << written.error().describe() << "\n";
        return 1;
    }
    if (!cli.quiet) {
        std::cerr << "tlppm_request: enqueued '" << cli.id << "' ("
                  << cli.figure << ", scale " << cli.scale << ")\n";
    }
    if (cli.wait_s == 0.0)
        return 0;

    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(cli.wait_s));
    std::string text;
    for (;;) {
        auto content = tlp::util::readFileIfExists(resp_path);
        if (content && content.value().has_value()) {
            text = std::move(*content.value());
            break;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
            std::cerr << "tlppm_request: timed out after " << cli.wait_s
                      << " s waiting for '" << resp_path
                      << "' (is tlppm_serve running?)\n";
            return 2;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(cli.poll_period_s));
    }

    // Verify the sealed header and the payload CRC before trusting a
    // byte of it.
    const std::size_t nl = text.find('\n');
    if (nl == std::string::npos) {
        std::cerr << "tlppm_request: malformed response (no header)\n";
        return 1;
    }
    const std::string header = text.substr(0, nl);
    const std::string payload = text.substr(nl + 1);
    std::uint64_t bytes = 0, crc = 0, from_store = 0, sim_calls = 0,
                  attempts = 0;
    std::string status;
    if (!checkSealedJsonLine(header) ||
        header.rfind("{\"tlppm_response\":1", 0) != 0 ||
        !jsonFieldString(header, "status", status) ||
        !jsonFieldU64(header, "bytes", bytes) ||
        !jsonFieldU64(header, "payload_crc", crc) ||
        payload.size() != bytes ||
        tlp::util::crc32(payload) != static_cast<std::uint32_t>(crc)) {
        std::cerr << "tlppm_request: response failed its integrity "
                     "check (torn or corrupt '"
                  << resp_path << "')\n";
        return 1;
    }
    jsonFieldU64(header, "from_store", from_store);
    jsonFieldU64(header, "sim_calls", sim_calls);
    jsonFieldU64(header, "attempts", attempts);

    if (status != "ok") {
        std::string code, message;
        jsonFieldString(header, "code", code);
        jsonFieldString(header, "message", message);
        std::cerr << "tlppm_request: request failed [" << code << "]: "
                  << message << "\n";
        return code == "overloaded" ? 3 : 1;
    }
    if (!cli.quiet) {
        std::cerr << "tlppm_request: status=ok from_store=" << from_store
                  << " sim_calls=" << sim_calls
                  << " attempts=" << attempts << " bytes=" << bytes
                  << "\n";
    }
    std::cout << payload;
    return 0;
}
