/**
 * @file
 * tlppm_tracegen — dump the synthetic workload suite to trace files.
 *
 * Usage:
 *   tlppm_tracegen --out DIR [--workloads A,B,...] [--ns 1,2,4,8,16]
 *
 * Writes one sealed version-1 trace file per workload (lowercased name,
 * ".trc" suffix) into DIR, each holding one `@program` section per
 * requested thread count, captured at the TLPPM_SCALE problem scale
 * (default 1.0 — set it to the scale you will replay at; a trace replays
 * only at its captured scale). The default thread counts cover both
 * simulation figures (fig3 uses {1,2,4,8,16}, fig4 {1,2,3,4,6,8,10,12,
 * 14,16}).
 *
 * Replaying a dump reproduces the generator tables byte for byte:
 *   tlppm_tracegen --out traces
 *   fig3_scenario1_simulation --workloads \
 *       trace:traces/fmm.trc,trace:traces/cholesky.trc,...
 *
 * One line per written file is printed to stdout (its trace:<path>
 * spec), ready to paste into --workloads.
 */

#include <cctype>
#include <iostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "util/fs.hpp"
#include "util/parse.hpp"
#include "workloads/trace.hpp"
#include "workloads/workload.hpp"

namespace {

struct TracegenOptions
{
    std::string out;
    std::vector<std::string> workloads; ///< empty: the whole suite
    std::vector<int> ns = {1, 2, 3, 4, 6, 8, 10, 12, 14, 16};
};

std::vector<std::string>
splitCsv(const std::string& csv)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            parts.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return parts;
}

TracegenOptions
parseCli(int argc, char** argv)
{
    TracegenOptions options;
    std::set<std::string> seen;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string name = arg;
        std::string value;
        bool has_value = false;
        const std::string::size_type eq = arg.find('=');
        if (eq != std::string::npos && arg.rfind("--", 0) == 0) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            has_value = true;
        }
        if (name != "--out" && name != "--workloads" && name != "--ns") {
            tlppm_bench::usageError(
                "unknown argument '" + arg +
                "' (expected --out DIR, --workloads A,B, --ns 1,2,4)");
        }
        if (!seen.insert(name).second)
            tlppm_bench::usageError("duplicate flag '" + name + "'");
        if (!has_value) {
            if (i + 1 >= argc)
                tlppm_bench::usageError("flag '" + name +
                                        "' needs a value");
            value = argv[++i];
        }
        if (name == "--out") {
            options.out = value;
        } else if (name == "--workloads") {
            options.workloads = splitCsv(value);
        } else if (name == "--ns") {
            options.ns.clear();
            for (const std::string& part : splitCsv(value)) {
                const auto n = tlp::util::parseInt(part, "--ns", 1, 1024);
                if (!n)
                    tlppm_bench::usageError(n.error().describe());
                options.ns.push_back(static_cast<int>(n.value()));
            }
        }
    }
    if (options.out.empty())
        tlppm_bench::usageError("--out DIR is required");
    if (options.ns.empty())
        tlppm_bench::usageError("--ns named no thread counts");
    return options;
}

/** "Water-Nsq" -> "water-nsq": lowercased, non-alphanumerics dashed. */
std::string
slugOf(const std::string& name)
{
    std::string slug;
    for (char c : name) {
        const unsigned char u = static_cast<unsigned char>(c);
        slug += std::isalnum(u) ? static_cast<char>(std::tolower(u)) : '-';
    }
    return slug;
}

} // namespace

int
main(int argc, char** argv)
{
    const TracegenOptions options = parseCli(argc, argv);
    const double scale = tlppm_bench::workloadScale();

    std::vector<const tlp::workloads::WorkloadInfo*> apps;
    if (options.workloads.empty()) {
        for (const auto& info : tlp::workloads::suite())
            apps.push_back(&info);
    } else {
        for (const std::string& spec : options.workloads) {
            const auto app = tlp::workloads::resolve(spec);
            if (!app)
                tlppm_bench::usageError(app.error().describe());
            apps.push_back(app.value());
        }
    }

    const auto made_dir = tlp::util::ensureDir(options.out);
    if (!made_dir)
        tlppm_bench::usageError(made_dir.error().describe());

    for (const auto* app : apps) {
        std::vector<std::pair<int, tlp::sim::Program>> programs;
        for (int n : options.ns)
            programs.emplace_back(n, app->make(n, scale));
        const std::string text =
            tlp::workloads::formatTrace(app->name, scale, programs);
        const std::string path =
            options.out + "/" + slugOf(app->name) + ".trc";
        const auto written = tlp::util::atomicWriteFile(path, text);
        if (!written) {
            std::cerr << "error: " << written.error().describe() << "\n";
            return 1;
        }
        std::cerr << "  [tracegen] " << app->name << " -> " << path
                  << " (" << text.size() << " bytes, " << options.ns.size()
                  << " thread counts)\n";
        std::cout << "trace:" << path << "\n";
    }
    return 0;
}
