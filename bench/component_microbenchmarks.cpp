/**
 * @file
 * google-benchmark microbenchmarks of the library's computational
 * kernels: the event queue, cache arrays, full MESI transactions, the
 * thermal solver, the leakage fit, the alpha-power inversion, the
 * analytic scenario solvers, and workload generation. These guard the
 * simulator's host-side performance (the Figure 3/4 sweeps execute
 * hundreds of whole-chip simulations).
 */

#include <benchmark/benchmark.h>

#include "model/scenario1.hpp"
#include "model/scenario2.hpp"
#include "sim/cache.hpp"
#include "sim/cmp.hpp"
#include "sim/event_queue.hpp"
#include "tech/technology.hpp"
#include "thermal/rc_model.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace tlp;

void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue queue;
        std::uint64_t sum = 0;
        for (int i = 0; i < n; ++i)
            queue.schedule(static_cast<sim::Cycle>(i % 97), [&sum] {
                ++sum;
            });
        queue.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void
BM_CacheArrayInsertLookup(benchmark::State& state)
{
    sim::CacheArray cache(64 * 1024, 64, 2);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        cache.insert(addr, sim::Mesi::Exclusive);
        benchmark::DoNotOptimize(cache.state(addr ^ 0x40));
        addr += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayInsertLookup);

void
BM_WholeChipSimulation(benchmark::State& state)
{
    const int threads = static_cast<int>(state.range(0));
    const sim::Cmp cmp{sim::CmpConfig{}};
    const sim::Program prog = workloads::makeWaterSp(threads, 0.25);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        const auto result = cmp.run(prog, 3.2e9);
        insts += result.instructions;
        benchmark::DoNotOptimize(result.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
    state.SetLabel("items = simulated instructions");
}
BENCHMARK(BM_WholeChipSimulation)->Arg(1)->Arg(16);

void
BM_ThermalSteadyState(benchmark::State& state)
{
    const int cores = static_cast<int>(state.range(0));
    thermal::RCModel model(
        thermal::makeTiledCmp(cores, 1e-5, 4e-5, true),
        thermal::RCParams{});
    std::vector<double> power(model.floorplan().size(), 0.1);
    for (auto _ : state) {
        const auto sol = model.solve(power);
        benchmark::DoNotOptimize(sol.avg_core_temp_c);
    }
}
BENCHMARK(BM_ThermalSteadyState)->Arg(4)->Arg(16);

/**
 * Dense-LU vs sparse-Cholesky head-to-head on the thermal hot paths, at
 * floorplan sizes bracketing the crossover (single-tile cores, so the
 * node count is cores + L2 + sink). Run with --benchmark_format=json to
 * get machine-readable per-size timings; the fill_in_nnz counter reports
 * the sparse factor's structural fill beyond the assembled lower
 * triangle (always 0 for dense, whose factor is fully dense by
 * construction).
 */
void
BM_ThermalSolveHeadToHead(benchmark::State& state,
                          thermal::ThermalSolverKind kind)
{
    const int blocks = static_cast<int>(state.range(0));
    thermal::RCModel model(
        thermal::makeTiledCmp(blocks - 1, 1e-5, 4e-5, false),
        thermal::RCParams{}, kind);
    std::vector<double> power(model.floorplan().size(), 0.1);
    thermal::ThermalSolution sol;
    thermal::SolveScratch scratch;
    for (auto _ : state) {
        model.solveInto(power, sol, scratch);
        benchmark::DoNotOptimize(sol.avg_core_temp_c);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["fill_in_nnz"] =
        static_cast<double>(model.fillInNnz());
}
BENCHMARK_CAPTURE(BM_ThermalSolveHeadToHead, dense,
                  thermal::ThermalSolverKind::Dense)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);
BENCHMARK_CAPTURE(BM_ThermalSolveHeadToHead, sparse,
                  thermal::ThermalSolverKind::Sparse)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

/**
 * Numeric refactorization cost (the package-calibration bisection's
 * inner step): setParams() reassembles the conductance matrix and
 * refactorizes. Both solvers pay the same assembly, so the delta is the
 * elimination itself; the sparse side reuses its cached symbolic
 * analysis and only redoes numeric work.
 */
void
BM_ThermalRefactorizeHeadToHead(benchmark::State& state,
                                thermal::ThermalSolverKind kind)
{
    const int blocks = static_cast<int>(state.range(0));
    thermal::RCModel model(
        thermal::makeTiledCmp(blocks - 1, 1e-5, 4e-5, false),
        thermal::RCParams{}, kind);
    thermal::RCParams params;
    bool flip = false;
    for (auto _ : state) {
        params.r_vertical_specific = flip ? 1.25e-5 : 1.30e-5;
        flip = !flip;
        model.setParams(params);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["fill_in_nnz"] =
        static_cast<double>(model.fillInNnz());
    state.counters["symbolic_analyses"] =
        static_cast<double>(model.symbolicAnalysisCount());
}
BENCHMARK_CAPTURE(BM_ThermalRefactorizeHeadToHead, dense,
                  thermal::ThermalSolverKind::Dense)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);
BENCHMARK_CAPTURE(BM_ThermalRefactorizeHeadToHead, sparse,
                  thermal::ThermalSolverKind::Sparse)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

void
BM_LeakageFit(benchmark::State& state)
{
    const tech::Technology tech = tech::tech65nm();
    for (auto _ : state) {
        const auto report = tech::fitLeakageScale(
            tech.leakageReference(), tech.vMin(), tech.vddNominal(), 40.0,
            110.0, 25);
        benchmark::DoNotOptimize(report.max_rel_error);
    }
}
BENCHMARK(BM_LeakageFit);

void
BM_AlphaPowerInverse(benchmark::State& state)
{
    const tech::Technology tech = tech::tech65nm();
    double f = 0.4e9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tech.frequencyLaw().voltageFor(f));
        f = f < 3.0e9 ? f + 1e8 : 0.4e9;
    }
}
BENCHMARK(BM_AlphaPowerInverse);

void
BM_Scenario1Solve(benchmark::State& state)
{
    const model::AnalyticCmp cmp(tech::tech65nm(), 32);
    const model::Scenario1 scenario(cmp);
    int n = 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(scenario.solve(n, 0.9).normalized_power);
        n = n < 32 ? n * 2 : 2;
    }
}
BENCHMARK(BM_Scenario1Solve);

void
BM_Scenario2Solve(benchmark::State& state)
{
    const model::AnalyticCmp cmp(tech::tech65nm(), 32);
    const model::Scenario2 scenario(cmp);
    int n = 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(scenario.solve(n, 1.0).speedup);
        n = n < 16 ? n * 2 : 2;
    }
}
BENCHMARK(BM_Scenario2Solve);

void
BM_WorkloadGeneration(benchmark::State& state)
{
    for (auto _ : state) {
        const sim::Program prog = workloads::makeLu(16, 0.5);
        benchmark::DoNotOptimize(prog.instructionCount());
    }
}
BENCHMARK(BM_WorkloadGeneration);

} // namespace

BENCHMARK_MAIN();
