/**
 * @file
 * Figure 5 (beyond the paper): multiprogrammed co-scheduling — k
 * applications pinned to disjoint core sets of the 16-way CMP, sharing
 * the L2, the bus, and one global power budget, each arbitrated to its
 * own DVFS operating point (src/model/multiprog.hpp documents the
 * composition model and the arbitration).
 *
 * Co-schedules come from --workloads as comma-joined specs of the form
 * NAME:cores+NAME:cores (core count after the LAST ':', so trace:<path>
 * workloads keep their colon), e.g.
 *   --workloads "FMM:8+Radix:8,Cholesky:4+Ocean:4+FFT:8"
 * The default is exactly that pair. Suite names and trace:<path> specs
 * both work; tlppm_tracegen dumps the suite to traces.
 *
 * The grid points are pre-warmed through the jobs-parallel sweep path
 * and the arbitration itself is serial, so the tables are byte-identical
 * at any --jobs; with --raw-store DIR a warm rerun prices the whole
 * figure with sim_calls=0. --shards is rejected (the figure's unit of
 * work is a co-schedule, not a row).
 *
 * The rendering lives in service::renderFigure ("fig5_multiprog") — the
 * sweep service serves the identical tables from the same code path.
 */

#include <iostream>

#include "bench_util.hpp"
#include "runner/fault_injection.hpp"
#include "service/figures.hpp"

int
main(int argc, char** argv)
{
    const tlppm_bench::SweepCliOptions cli =
        tlppm_bench::parseSweepCli(argc, argv);
    tlppm_bench::setupTrace(cli);
    tlp::runner::StoreFaultInjector::instance().installFromEnv();
    tlp::service::FigureOptions options;
    options.jobs = cli.jobs;
    options.scale = tlppm_bench::workloadScale();
    options.journal_path = cli.journal;
    options.resume = cli.resume;
    options.point_timeout_s = cli.point_timeout_s;
    options.progress = cli.progress;
    options.cache_stats = cli.cache_stats;
    options.shards = cli.shards;
    options.shard_index = cli.shard_index;
    options.raw_store = tlppm_bench::rawStorePath(cli);
    options.workloads = cli.workloads;
    const auto run = tlp::service::renderFigure("fig5_multiprog", options);
    if (!run) {
        // A malformed co-schedule spec or unresolvable workload (unknown
        // name, unreadable or corrupt trace) is a usage error.
        std::cerr << "error: " << run.error().describe() << "\n";
        return 2;
    }
    std::cout << run.value().output;
    tlppm_bench::writeMetrics(cli, run.value().metrics_json);
    tlppm_bench::finishTrace();
    return 0;
}
