/**
 * @file
 * Regenerates Table 2: the SPLASH-2 applications and problem sizes, with
 * the scaled sizes this reproduction simulates and each generator's
 * measured instruction mix.
 */

#include <iostream>

#include "bench_util.hpp"
#include "sim/cmp.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

int
main()
{
    using namespace tlp;
    tlppm_bench::banner("Table 2 -- SPLASH-2 applications");

    const double scale = tlppm_bench::workloadScale();
    util::Table table(
        "Table 2: applications (scale = " + util::Table::num(scale, 2) +
            ")",
        {"Application", "Paper problem size", "Simulated size", "Regime",
         "Insts", "FP%", "Mem%"});

    for (const auto& info : workloads::suite()) {
        const sim::Program prog = info.make(1, scale);
        const auto& ops = prog.threads[0].ops();
        std::uint64_t fp = 0, mem = 0, total = 0;
        for (const auto& op : ops) {
            switch (op.type) {
              case sim::OpType::IntOps:
                total += op.count;
                break;
              case sim::OpType::FpOps:
                total += op.count;
                fp += op.count;
                break;
              case sim::OpType::Load:
              case sim::OpType::Store:
                ++total;
                ++mem;
                break;
              default:
                break;
            }
        }
        table.addRow({info.name, info.paper_size, info.scaled_size,
                      info.regime, util::Table::num(total),
                      util::Table::num(100.0 * fp / total, 1),
                      util::Table::num(100.0 * mem / total, 1)});
    }
    table.print(std::cout);
    return 0;
}
